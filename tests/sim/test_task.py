"""Tests for the periodic task model."""

import numpy as np
import pytest

from repro.sim.engine import NS_PER_MS
from repro.sim.task import Job, SyscallUse, TaskDefinition
from repro.sim.workloads.mibench import paper_taskset, sha_task


def _definition(**overrides):
    defaults = dict(
        name="t",
        exec_time_ns=2 * NS_PER_MS,
        period_ns=10 * NS_PER_MS,
        syscalls=(SyscallUse("read", 2),),
        exec_jitter=0.0,
        pagefaults_per_job=0.0,
    )
    defaults.update(overrides)
    return TaskDefinition(**defaults)


class TestTaskDefinition:
    def test_utilization(self):
        assert _definition().utilization == pytest.approx(0.2)

    def test_paper_taskset_utilization(self):
        # Section 5.1: system load 78 %.
        total = sum(t.utilization for t in paper_taskset())
        assert total == pytest.approx(0.78)

    def test_exec_exceeding_period_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            _definition(exec_time_ns=11 * NS_PER_MS)

    def test_nonpositive_times_rejected(self):
        with pytest.raises(ValueError):
            _definition(exec_time_ns=0)
        with pytest.raises(ValueError):
            _definition(period_ns=0)

    def test_bad_jitter_rejected(self):
        with pytest.raises(ValueError):
            _definition(exec_jitter=0.5)

    def test_negative_phase_rejected(self):
        with pytest.raises(ValueError):
            _definition(phase_ns=-1)

    def test_syscall_use_validation(self):
        with pytest.raises(ValueError):
            SyscallUse("read", 0)

    def test_resolved_user_base_auto_spacing(self):
        definition = _definition()
        assert definition.resolved_user_base(0) != definition.resolved_user_base(1)

    def test_resolved_user_base_explicit(self):
        definition = _definition(user_text_base=0x12345000)
        assert definition.resolved_user_base(9) == 0x12345000

    def test_with_phase(self):
        shifted = _definition().with_phase(3 * NS_PER_MS)
        assert shifted.phase_ns == 3 * NS_PER_MS
        assert shifted.name == "t"


class TestJobPlanning:
    def test_calls_sorted_and_counted(self, rng):
        definition = _definition(
            syscalls=(SyscallUse("read", 5), SyscallUse("write", 3))
        )
        job = Job(definition, release_ns=0, rng=rng, user_base=0x10000)
        assert len(job.calls) == 8
        offsets = [c.user_offset_ns for c in job.calls]
        assert offsets == sorted(offsets)
        assert all(0 < off < job.user_required_ns for off in offsets)

    def test_pagefaults_add_service_calls(self, rng):
        definition = _definition(pagefaults_per_job=50.0)
        job = Job(definition, release_ns=0, rng=rng, user_base=0x10000)
        faults = [c for c in job.calls if c.service == "kernel.page_fault"]
        assert faults  # Poisson(50) is never 0 in practice
        assert all(not c.via_table for c in faults)

    def test_zero_jitter_exec_time_exact(self, rng):
        definition = _definition()
        job = Job(definition, release_ns=0, rng=rng, user_base=0x10000)
        assert job.user_required_ns == definition.exec_time_ns

    def test_exec_jitter_bounded_below(self):
        definition = _definition(exec_jitter=0.4)
        rng = np.random.default_rng(0)
        for _ in range(100):
            job = Job(definition, release_ns=0, rng=rng, user_base=0x10000)
            assert job.user_required_ns >= definition.exec_time_ns * 0.5


class TestJobProgress:
    def _job(self, rng, **overrides):
        return Job(_definition(**overrides), release_ns=0, rng=rng, user_base=0x10000)

    def test_fresh_job_incomplete(self, rng):
        job = self._job(rng)
        assert not job.is_complete
        assert job.pending_call is not None

    def test_milestone_is_next_call(self, rng):
        job = self._job(rng)
        assert job.time_to_next_milestone() == job.calls[0].user_offset_ns

    def test_advance_consumes_kernel_first(self, rng):
        job = self._job(rng)
        job.begin_kernel_segment(100)
        job.advance(150)
        assert job.kernel_pending_ns == 0
        assert job.kernel_time_ns == 100
        assert job.user_done_ns == 50

    def test_advance_partial_kernel(self, rng):
        job = self._job(rng)
        job.begin_kernel_segment(100)
        job.advance(40)
        assert job.kernel_pending_ns == 60
        assert job.user_done_ns == 0

    def test_negative_advance_rejected(self, rng):
        with pytest.raises(ValueError):
            self._job(rng).advance(-1)

    def test_completion_path(self, rng):
        job = self._job(rng, syscalls=())
        job.advance(job.user_required_ns)
        assert job.is_complete
        assert job.time_to_next_milestone() == 0

    def test_user_time_does_not_overshoot(self, rng):
        job = self._job(rng, syscalls=())
        job.advance(job.user_required_ns * 10)
        assert job.user_done_ns == job.user_required_ns

    def test_response_time(self, rng):
        job = Job(_definition(), release_ns=1000, rng=rng, user_base=0x10000)
        assert job.response_time_ns is None
        job.completed_at_ns = 5000
        assert job.response_time_ns == 4000

    def test_sha_profile_is_read_heavy(self, rng):
        """Section 5.3: sha 'uses many read system calls'."""
        job = Job(sha_task(), release_ns=0, rng=rng, user_base=0x10000)
        reads = sum(1 for c in job.calls if c.service == "read")
        others = sum(
            1 for c in job.calls if c.via_table and c.service != "read"
        )
        assert reads >= 5 * others

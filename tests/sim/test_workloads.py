"""Tests for the workload definitions."""

import pytest

from repro.sim.engine import NS_PER_MS, NS_PER_SEC
from repro.sim.platform import Platform, PlatformConfig
from repro.sim.smp import partition_tasks
from repro.sim.workloads.mibench import (
    TASK_CATEGORIES,
    extended_taskset,
    paper_taskset,
)


class TestPaperTaskset:
    def test_exact_paper_parameters(self):
        """Section 5.1's table, verbatim."""
        expected = {
            "fft": (2, 10, "telecomm"),
            "bitcount": (3, 20, "automotive"),
            "basicmath": (9, 50, "automotive"),
            "sha": (25, 100, "security"),
        }
        tasks = {t.name: t for t in paper_taskset()}
        assert set(tasks) == set(expected)
        for name, (exec_ms, period_ms, category) in expected.items():
            task = tasks[name]
            assert task.exec_time_ns == exec_ms * NS_PER_MS, name
            assert task.period_ns == period_ms * NS_PER_MS, name
            assert TASK_CATEGORIES[name] == category

    def test_utilization_is_78_percent(self):
        assert sum(t.utilization for t in paper_taskset()) == pytest.approx(0.78)

    def test_every_task_has_a_category(self):
        for task in extended_taskset():
            assert task.name in TASK_CATEGORIES

    def test_fresh_instances_each_call(self):
        a, b = paper_taskset(), paper_taskset()
        assert a is not b
        assert a[0] == b[0]


class TestExtendedTaskset:
    def test_unique_names(self):
        names = [t.name for t in extended_taskset()]
        assert len(names) == len(set(names))

    def test_needs_two_cores(self):
        total = sum(t.utilization for t in extended_taskset())
        assert total > 1.0  # not single-core schedulable
        assigned = partition_tasks(extended_taskset(), 2)
        assert {t.core for t in assigned} == {0, 1}

    def test_runs_clean_on_two_cores(self):
        tasks = tuple(partition_tasks(extended_taskset(), 2))
        platform = Platform(
            PlatformConfig(seed=17, monitored_cores=2, tasks=tasks)
        )
        platform.run_for(2 * NS_PER_SEC)
        for scheduler in platform.schedulers:
            for name in scheduler.task_names:
                stats = scheduler.task(name).stats
                assert stats.completions > 0, name
                assert stats.deadline_misses == 0, name

    def test_all_syscalls_resolvable(self, layout):
        """Every syscall a workload uses exists in the default table."""
        from repro.sim.kernel.syscalls import build_default_services

        _, table = build_default_services(layout)
        for task in extended_taskset():
            for use in task.syscalls:
                assert use.name in table, (task.name, use.name)

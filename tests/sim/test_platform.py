"""Tests for the assembled platform."""

import numpy as np
import pytest

from repro.core.series import HeatMapSeries
from repro.sim.engine import NS_PER_MS
from repro.sim.platform import Platform, PlatformConfig
from repro.sim.workloads.mibench import paper_taskset


class TestConfig:
    def test_defaults_match_paper(self):
        config = PlatformConfig()
        assert config.spec.num_cells == 1472
        assert config.interval_ns == 10 * NS_PER_MS
        assert [t.name for t in config.tasks] == [
            "fft",
            "bitcount",
            "basicmath",
            "sha",
        ]

    def test_bad_placement_rejected(self):
        with pytest.raises(ValueError, match="placement"):
            PlatformConfig(placement="in-dram")

    def test_duplicate_task_names_rejected(self):
        tasks = paper_taskset() + [paper_taskset()[0]]
        with pytest.raises(ValueError, match="unique"):
            PlatformConfig(tasks=tuple(tasks))

    def test_with_helpers(self):
        config = PlatformConfig()
        assert config.with_granularity(8192).spec.num_cells == 368
        assert config.with_seed(5).seed == 5
        assert config.with_placement("post-l1").placement == "post-l1"
        assert len(config.with_tasks(paper_taskset()[:2]).tasks) == 2


class TestCollection:
    def test_one_heatmap_per_interval(self, platform):
        platform.run_intervals(25)
        assert platform.intervals_completed == 25

    def test_collect_returns_only_new_intervals(self, platform):
        first = platform.collect_intervals(10)
        second = platform.collect_intervals(5)
        assert len(first) == 10
        assert len(second) == 5
        assert second[0].interval_index == 10

    def test_heatmap_series_accumulates(self, platform):
        platform.collect_intervals(10)
        platform.collect_intervals(10)
        assert len(platform.heatmap_series()) == 20

    def test_interval_metadata(self, platform):
        series = platform.collect_intervals(3)
        assert [m.interval_index for m in series] == [0, 1, 2]
        assert series[1].start_time_ns == platform.config.interval_ns

    def test_negative_intervals_rejected(self, platform):
        with pytest.raises(ValueError):
            platform.run_intervals(-1)

    def test_heatmaps_are_nonempty_and_kernel_only(self, platform):
        series = platform.collect_intervals(10)
        for heat_map in series:
            assert heat_map.total_accesses > 1000
        # User-space fetches were emitted but filtered.
        assert platform.memometer.drop_rate > 0

    def test_tick_and_kworker_present(self, platform):
        platform.run_intervals(5)
        assert platform.kernel.invocation_count("kernel.tick") >= 49
        assert platform.kernel.invocation_count("kernel.kworker") >= 10

    def test_kworker_can_be_disabled(self):
        platform = Platform(PlatformConfig(seed=1, enable_kworker=False))
        platform.run_intervals(3)
        assert platform.kernel.invocation_count("kernel.kworker") == 0


class TestReproducibility:
    def test_same_seed_identical_heatmaps(self):
        series_a = Platform(PlatformConfig(seed=9)).collect_intervals(20)
        series_b = Platform(PlatformConfig(seed=9)).collect_intervals(20)
        np.testing.assert_array_equal(series_a.matrix(), series_b.matrix())

    def test_different_seed_different_heatmaps(self):
        series_a = Platform(PlatformConfig(seed=1)).collect_intervals(20)
        series_b = Platform(PlatformConfig(seed=2)).collect_intervals(20)
        assert not np.array_equal(series_a.matrix(), series_b.matrix())

    def test_seeds_share_structure(self):
        """Different boots look different in detail but share the hot set
        (the property that makes cross-boot detection possible)."""
        a = Platform(PlatformConfig(seed=1)).collect_intervals(30).matrix().mean(0)
        b = Platform(PlatformConfig(seed=2)).collect_intervals(30).matrix().mean(0)
        hot_a = set(np.argsort(a)[-20:].tolist())
        hot_b = set(np.argsort(b)[-20:].tolist())
        assert len(hot_a & hot_b) >= 15


class TestPlacements:
    @pytest.mark.parametrize("placement", ["pre-l1", "post-l1", "post-l2"])
    def test_all_placements_produce_maps(self, placement):
        platform = Platform(PlatformConfig(seed=3, placement=placement))
        series = platform.collect_intervals(5)
        assert len(series) == 5
        # Post-L2 the steady-state miss stream can drop to zero (the
        # kernel hot set fits in 512 KB) — but the cold start must show.
        assert series.traffic_volumes().sum() > 0

    def test_cache_placements_see_less_traffic(self):
        pre = Platform(PlatformConfig(seed=3, placement="pre-l1"))
        post = Platform(PlatformConfig(seed=3, placement="post-l1"))
        pre_vol = pre.collect_intervals(20).traffic_volumes().sum()
        post_vol = post.collect_intervals(20).traffic_volumes().sum()
        assert post_vol < pre_vol * 0.8

    def test_post_l2_sees_least(self):
        l1 = Platform(PlatformConfig(seed=3, placement="post-l1"))
        l2 = Platform(PlatformConfig(seed=3, placement="post-l2"))
        vol_l1 = l1.collect_intervals(20).traffic_volumes().sum()
        vol_l2 = l2.collect_intervals(20).traffic_volumes().sum()
        assert vol_l2 <= vol_l1

    def test_caches_instantiated_per_placement(self):
        assert len(Platform(PlatformConfig(placement="pre-l1")).caches) == 0
        assert len(Platform(PlatformConfig(placement="post-l1")).caches) == 1
        assert len(Platform(PlatformConfig(placement="post-l2")).caches) == 2

"""Tests for the rate-monotonic scheduler."""

import numpy as np
import pytest

from repro.sim.engine import NS_PER_MS, NS_PER_SEC, Simulator
from repro.sim.kernel.kernel import Kernel
from repro.sim.kernel.scheduler import RMScheduler
from repro.sim.task import SyscallUse, TaskDefinition
from repro.sim.workloads.mibench import paper_taskset


def make_env(layout, seed=0):
    sim = Simulator()
    rng = np.random.default_rng(seed)
    kernel = Kernel(sim, rng, layout=layout)
    scheduler = RMScheduler(sim, kernel, rng)
    return sim, kernel, scheduler


def simple_task(name, exec_ms, period_ms, **overrides):
    defaults = dict(
        name=name,
        exec_time_ns=exec_ms * NS_PER_MS,
        period_ns=period_ms * NS_PER_MS,
        syscalls=(SyscallUse("read", 1),),
        exec_jitter=0.0,
        pagefaults_per_job=0.0,
    )
    defaults.update(overrides)
    return TaskDefinition(**defaults)


class TestAdmission:
    def test_add_and_list(self, layout):
        sim, _, scheduler = make_env(layout)
        scheduler.add_task(simple_task("a", 1, 10))
        scheduler.add_task(simple_task("b", 1, 20))
        assert scheduler.task_names == ["a", "b"]
        assert scheduler.total_utilization() == pytest.approx(0.15)

    def test_duplicate_rejected(self, layout):
        _, _, scheduler = make_env(layout)
        scheduler.add_task(simple_task("a", 1, 10))
        with pytest.raises(ValueError, match="already admitted"):
            scheduler.add_task(simple_task("a", 1, 10))

    def test_remove_unknown_rejected(self, layout):
        _, _, scheduler = make_env(layout)
        with pytest.raises(KeyError):
            scheduler.remove_task("ghost")


class TestReleases:
    def test_periodic_release_count(self, layout):
        sim, _, scheduler = make_env(layout)
        scheduler.add_task(simple_task("a", 1, 10))
        sim.run_until(100 * NS_PER_MS - 1)
        assert scheduler.task("a").stats.releases == 10  # t = 0, 10, ..., 90

    def test_phase_delays_first_release(self, layout):
        sim, _, scheduler = make_env(layout)
        scheduler.add_task(simple_task("a", 1, 10, phase_ns=5 * NS_PER_MS))
        sim.run_until(4 * NS_PER_MS)
        assert scheduler.task("a").stats.releases == 0
        sim.run_until(6 * NS_PER_MS)
        assert scheduler.task("a").stats.releases == 1

    def test_release_emits_wakeup_footprint(self, layout):
        sim, kernel, scheduler = make_env(layout)
        scheduler.add_task(simple_task("a", 1, 10))
        sim.run_until(1)
        assert kernel.invocation_count("kernel.job_release") == 1


class TestExecution:
    def test_single_task_completes_every_job(self, layout):
        sim, _, scheduler = make_env(layout)
        scheduler.add_task(simple_task("a", 2, 10))
        sim.run_until(NS_PER_SEC)
        stats = scheduler.task("a").stats
        assert stats.completions >= stats.releases - 1
        assert stats.deadline_misses == 0

    def test_response_time_close_to_exec_when_alone(self, layout):
        sim, _, scheduler = make_env(layout)
        scheduler.add_task(simple_task("a", 2, 10))
        sim.run_until(200 * NS_PER_MS)
        stats = scheduler.task("a").stats
        # Execution plus one read syscall's latency, roughly.
        assert 2 * NS_PER_MS <= stats.mean_response_ns < 3 * NS_PER_MS

    def test_syscalls_reach_kernel(self, layout):
        sim, kernel, scheduler = make_env(layout)
        scheduler.add_task(simple_task("a", 2, 10, syscalls=(SyscallUse("read", 3),)))
        sim.run_until(100 * NS_PER_MS)
        # ~10 jobs x 3 reads each.
        assert kernel.invocation_count("syscall.read") >= 20

    def test_user_bursts_emitted(self, layout):
        from repro.sim.trace import TraceRecorder

        sim, kernel, scheduler = make_env(layout)
        recorder = TraceRecorder()
        kernel.attach_probe(recorder)
        scheduler.add_task(simple_task("a", 2, 10))
        sim.run_until(50 * NS_PER_MS)
        assert recorder.bursts_of_kind("user")


class TestPreemption:
    def test_high_priority_preempts_low(self, layout):
        sim, _, scheduler = make_env(layout)
        scheduler.add_task(simple_task("fast", 2, 10))
        scheduler.add_task(simple_task("slow", 50, 100))
        sim.run_until(NS_PER_SEC)
        assert scheduler.task("slow").stats.preemptions > 0
        assert scheduler.task("fast").stats.preemptions == 0
        assert scheduler.task("slow").stats.deadline_misses == 0

    def test_rm_priority_is_by_period(self, layout):
        sim, _, scheduler = make_env(layout)
        scheduler.add_task(simple_task("slow", 20, 100))
        scheduler.add_task(simple_task("fast", 4, 10))
        sim.run_until(500 * NS_PER_MS)
        fast = scheduler.task("fast").stats
        # fast always wins the CPU at its release: response ~ exec time.
        assert fast.max_response_ns < 6 * NS_PER_MS

    def test_context_switch_footprints(self, layout):
        sim, kernel, scheduler = make_env(layout)
        scheduler.add_task(simple_task("fast", 2, 10))
        scheduler.add_task(simple_task("slow", 30, 100))
        sim.run_until(300 * NS_PER_MS)
        assert scheduler.context_switches > 0
        assert (
            kernel.invocation_count("kernel.context_switch")
            == scheduler.context_switches
        )


class TestPaperTaskset:
    def test_schedulable_at_78_percent(self, layout):
        """Section 5.1's task set is RM-schedulable; no deadline misses."""
        sim, _, scheduler = make_env(layout, seed=3)
        for task in paper_taskset():
            scheduler.add_task(task)
        sim.run_until(3 * NS_PER_SEC)
        for name in scheduler.task_names:
            assert scheduler.task(name).stats.deadline_misses == 0, name

    def test_measured_utilization_near_nominal(self, layout):
        sim, _, scheduler = make_env(layout, seed=3)
        for task in paper_taskset():
            scheduler.add_task(task)
        sim.run_until(2 * NS_PER_SEC)
        # Nominal 78 % + syscall latencies; jitter keeps it close.
        assert 0.70 <= scheduler.measured_utilization() <= 0.88

    def test_sha_response_time_matches_analysis(self, layout):
        """Response-time analysis gives sha a ~71 ms fixed point."""
        sim, _, scheduler = make_env(layout, seed=3)
        for task in paper_taskset():
            scheduler.add_task(task)
        sim.run_until(2 * NS_PER_SEC)
        sha = scheduler.task("sha").stats
        assert 40 * NS_PER_MS < sha.max_response_ns <= 85 * NS_PER_MS


class TestOverload:
    def test_deadline_misses_recorded_and_bounded(self, layout):
        sim, _, scheduler = make_env(layout)
        scheduler.add_task(simple_task("hog", 9, 10))
        scheduler.add_task(simple_task("victim", 9, 20))
        sim.run_until(NS_PER_SEC)
        victim = scheduler.task("victim").stats
        assert victim.deadline_misses > 0
        # Skipped releases keep the backlog bounded: at most one active
        # job per task at any time.
        assert victim.releases + victim.deadline_misses == pytest.approx(
            50, abs=1
        )


class TestRemoval:
    def test_removed_task_stops_releasing(self, layout):
        sim, _, scheduler = make_env(layout)
        scheduler.add_task(simple_task("a", 1, 10))
        sim.run_until(35 * NS_PER_MS)
        releases_before = scheduler.task("a").stats.releases
        scheduler.remove_task("a")
        sim.run_until(200 * NS_PER_MS)
        assert "a" not in scheduler.task_names
        assert releases_before == 4

    def test_removing_running_task_dispatches_next(self, layout):
        sim, _, scheduler = make_env(layout)
        scheduler.add_task(simple_task("big", 80, 100))
        scheduler.add_task(simple_task("small", 1, 100, phase_ns=2 * NS_PER_MS))
        sim.run_until(5 * NS_PER_MS)  # big is running, small waits
        assert scheduler.running_task == "big"
        scheduler.remove_task("big")
        sim.run_until(10 * NS_PER_MS)
        assert scheduler.task("small").stats.completions == 1

    def test_idle_after_all_removed(self, layout):
        sim, _, scheduler = make_env(layout)
        scheduler.add_task(simple_task("a", 1, 10))
        sim.run_until(15 * NS_PER_MS)
        scheduler.remove_task("a")
        sim.run_until(30 * NS_PER_MS)
        assert scheduler.is_idle
        assert scheduler.running_task is None


class TestDeterminism:
    def test_same_seed_same_behaviour(self, layout):
        counts = []
        for _ in range(2):
            sim, kernel, scheduler = make_env(layout, seed=11)
            for task in paper_taskset():
                scheduler.add_task(task)
            sim.run_until(500 * NS_PER_MS)
            counts.append(dict(kernel.invocation_counts))
        assert counts[0] == counts[1]

    def test_different_seed_different_jitter(self, layout):
        totals = []
        for seed in (1, 2):
            sim, kernel, scheduler = make_env(layout, seed=seed)
            scheduler.add_task(simple_task("a", 5, 10, exec_jitter=0.1))
            sim.run_until(500 * NS_PER_MS)
            totals.append(scheduler.busy_ns)
        assert totals[0] != totals[1]

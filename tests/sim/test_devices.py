"""Tests for interrupt-driven devices (Section 5.5's stressor)."""

import numpy as np
import pytest

from repro.sim.devices import NetworkDevice, NetworkDeviceConfig
from repro.sim.engine import NS_PER_SEC, Simulator
from repro.sim.kernel.kernel import Kernel
from repro.sim.platform import Platform, PlatformConfig


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkDeviceConfig(mean_rate_hz=0)
        with pytest.raises(ValueError):
            NetworkDeviceConfig(burst_length_mean=0.5)
        with pytest.raises(ValueError):
            NetworkDeviceConfig(core=-1)

    def test_platform_validates_device_core(self):
        with pytest.raises(ValueError, match="network device"):
            PlatformConfig(
                network_devices=(NetworkDeviceConfig(core=1),), monitored_cores=1
            )


class TestDevice:
    def test_poisson_arrivals_near_rate(self, layout):
        sim = Simulator()
        kernel = Kernel(sim, np.random.default_rng(0), layout=layout)
        device = NetworkDevice(
            sim, kernel, NetworkDeviceConfig(mean_rate_hz=500.0), np.random.default_rng(1)
        )
        device.start()
        sim.run_until(2 * NS_PER_SEC)
        # ~1000 expected arrivals; Poisson 3-sigma band.
        assert 850 <= device.interrupts_raised <= 1150
        assert device.packets_received >= device.interrupts_raised
        assert device.mean_packets_per_interrupt >= 1.0

    def test_each_packet_runs_net_rx(self, layout):
        sim = Simulator()
        kernel = Kernel(sim, np.random.default_rng(0), layout=layout)
        device = NetworkDevice(
            sim, kernel, NetworkDeviceConfig(mean_rate_hz=100.0), np.random.default_rng(1)
        )
        device.start()
        sim.run_until(NS_PER_SEC)
        assert kernel.invocation_count("kernel.net_rx") == device.packets_received

    def test_double_start_rejected(self, layout):
        sim = Simulator()
        kernel = Kernel(sim, np.random.default_rng(0), layout=layout)
        device = NetworkDevice(
            sim, kernel, NetworkDeviceConfig(), np.random.default_rng(1)
        )
        device.start()
        with pytest.raises(RuntimeError, match="already started"):
            device.start()


class TestPlatformIntegration:
    def test_no_devices_by_default(self, platform):
        platform.run_intervals(5)
        assert platform.devices == []
        assert platform.kernel.invocation_count("kernel.net_rx") == 0

    def test_device_traffic_reaches_mhm(self):
        quiet = Platform(PlatformConfig(seed=21)).collect_intervals(30)
        noisy = Platform(
            PlatformConfig(
                seed=21,
                network_devices=(NetworkDeviceConfig(mean_rate_hz=500.0),),
            )
        ).collect_intervals(30)
        assert (
            noisy.traffic_volumes().mean() > 1.05 * quiet.traffic_volumes().mean()
        )

    def test_device_increases_unpredictability(self):
        """Aperiodic arrivals widen per-interval volume variation —
        the Section 5.5 failure mode for the global model."""

        def volume_cv(devices):
            platform = Platform(
                PlatformConfig(seed=22, network_devices=devices)
            )
            volumes = platform.collect_intervals(100).traffic_volumes().astype(float)
            return volumes.std() / volumes.mean()

        quiet_cv = volume_cv(())
        noisy_cv = volume_cv(
            (NetworkDeviceConfig(mean_rate_hz=800.0, burst_length_mean=4.0),)
        )
        assert noisy_cv > quiet_cv

    def test_net_rx_lands_in_net_subsystem(self, layout):
        from repro.sim.trace import TraceRecorder

        platform = Platform(
            PlatformConfig(
                seed=23, network_devices=(NetworkDeviceConfig(mean_rate_hz=300.0),)
            )
        )
        recorder = TraceRecorder()
        platform.kernel.attach_probe(recorder)
        platform.run_intervals(5)
        bursts = recorder.bursts_of_kind("kernel.net_rx")
        assert bursts
        subsystems = {
            layout.subsystem_of(int(a)) for a in bursts[0].addresses
        }
        assert "net" in subsystems
        assert "irq" in subsystems

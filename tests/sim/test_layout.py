"""Tests for the synthetic kernel layout."""

import numpy as np
import pytest

from repro.sim.kernel.layout import (
    KERNEL_TEXT_BASE,
    KERNEL_TEXT_END,
    KERNEL_TEXT_SIZE,
    MODULE_SPACE_BASE,
    KernelLayout,
    default_heatmap_spec,
)


class TestGeometry:
    def test_paper_segment_size(self):
        # Figure 1: 3,013,284 bytes between 0xC0008000 and 0xC02E7AA4.
        assert KERNEL_TEXT_SIZE == 3_013_284
        assert KERNEL_TEXT_END - KERNEL_TEXT_BASE == KERNEL_TEXT_SIZE

    def test_image_fills_segment_exactly(self, layout):
        assert layout.functions[0].address == KERNEL_TEXT_BASE
        assert layout.functions[-1].end_address == KERNEL_TEXT_END
        total = sum(fn.size for fn in layout.functions)
        assert total == KERNEL_TEXT_SIZE

    def test_functions_are_contiguous_and_non_overlapping(self, layout):
        for previous, current in zip(layout.functions, layout.functions[1:]):
            assert current.address == previous.end_address

    def test_function_sizes_positive_and_aligned(self, layout):
        for fn in layout.functions:
            assert fn.size > 0
            assert fn.address % 4 == 0

    def test_module_space_outside_text(self):
        assert MODULE_SPACE_BASE < KERNEL_TEXT_BASE

    def test_reasonable_symbol_count(self, layout):
        # A 3.x embedded kernel has thousands of functions.
        assert 1_000 < len(layout) < 50_000


class TestDeterminism:
    def test_two_instances_are_identical(self, layout):
        other = KernelLayout()
        assert len(other) == len(layout)
        for a, b in zip(layout.functions, other.functions):
            assert (a.name, a.address, a.size, a.subsystem) == (
                b.name,
                b.address,
                b.size,
                b.subsystem,
            )


class TestLookup:
    @pytest.mark.parametrize(
        "name",
        [
            "vector_swi",
            "schedule",
            "__switch_to",
            "sys_read",
            "vfs_read",
            "do_fork",
            "load_module",
            "do_exit",
            "cpu_idle",
            "sha_transform",
        ],
    )
    def test_anchor_functions_present(self, layout, name):
        fn = layout.symbol(name)
        assert fn.name == name
        assert KERNEL_TEXT_BASE <= fn.address < KERNEL_TEXT_END

    def test_unknown_symbol_raises(self, layout):
        with pytest.raises(KeyError):
            layout.symbol("sys_does_not_exist")

    def test_find_hits_every_function(self, layout):
        rng = np.random.default_rng(0)
        for _ in range(200):
            fn = layout.functions[rng.integers(len(layout.functions))]
            probe = fn.address + int(rng.integers(fn.size))
            assert layout.find(probe) is fn

    def test_find_outside_image(self, layout):
        assert layout.find(KERNEL_TEXT_BASE - 4) is None
        assert layout.find(KERNEL_TEXT_END) is None

    def test_find_first_and_last_byte(self, layout):
        assert layout.find(KERNEL_TEXT_BASE) is layout.functions[0]
        assert layout.find(KERNEL_TEXT_END - 1) is layout.functions[-1]

    def test_subsystem_of(self, layout):
        schedule = layout.symbol("schedule")
        assert layout.subsystem_of(schedule.address) == "sched"
        assert layout.subsystem_of(0) is None

    def test_functions_in_subsystem(self, layout):
        sched = layout.functions_in("sched")
        assert all(fn.subsystem == "sched" for fn in sched)
        assert any(fn.name == "schedule" for fn in sched)
        assert layout.functions_in("no_such_subsystem") == []

    def test_every_subsystem_is_populated(self, layout):
        for subsystem in layout.subsystems:
            assert layout.functions_in(subsystem), subsystem

    def test_sample_functions(self, layout):
        rng = np.random.default_rng(1)
        picks = layout.sample_functions("drivers", 5, rng)
        assert len(picks) == 5
        assert len({fn.name for fn in picks}) == 5
        assert all(fn.subsystem == "drivers" for fn in picks)

    def test_sample_functions_too_many(self, layout):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError, match="only"):
            layout.sample_functions("idle", 10_000, rng)


class TestDefaultSpec:
    def test_default_spec_matches_figure_1(self):
        spec = default_heatmap_spec()
        assert spec.base_address == KERNEL_TEXT_BASE
        assert spec.region_size == KERNEL_TEXT_SIZE
        assert spec.granularity == 2048
        assert spec.num_cells == 1472

    def test_coarse_spec_matches_section_5_4(self):
        # 8 KB granularity -> L = 368 (the fast analysis variant).
        assert default_heatmap_spec(granularity=8192).num_cells == 368

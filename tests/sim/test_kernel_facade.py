"""Tests for the Kernel facade."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.kernel.kernel import Kernel
from repro.sim.trace import TraceRecorder


@pytest.fixture()
def kernel(layout):
    return Kernel(Simulator(), np.random.default_rng(0), layout=layout)


class TestEmission:
    def test_syscall_emits_one_burst(self, kernel):
        recorder = TraceRecorder()
        kernel.attach_probe(recorder)
        latency = kernel.invoke_syscall("read")
        assert latency > 0
        assert len(recorder.bursts) == 1
        assert recorder.bursts[0].kind == "syscall.read"

    def test_unknown_syscall_raises(self, kernel):
        with pytest.raises(KeyError):
            kernel.invoke_syscall("frobnicate")

    def test_run_service(self, kernel):
        recorder = TraceRecorder()
        kernel.attach_probe(recorder)
        kernel.run_service("kernel.tick")
        assert recorder.kinds() == {"kernel.tick"}

    def test_invocation_counts(self, kernel):
        kernel.invoke_syscall("read")
        kernel.invoke_syscall("read")
        kernel.invoke_syscall("write")
        assert kernel.invocation_count("syscall.read") == 2
        assert kernel.invocation_count("syscall.write") == 1
        assert kernel.invocation_count("syscall.open") == 0

    def test_detach_probe(self, kernel):
        recorder = TraceRecorder()
        kernel.attach_probe(recorder)
        kernel.detach_probe(recorder)
        kernel.invoke_syscall("read")
        assert not recorder.bursts

    def test_core_tag_propagates(self, kernel):
        recorder = TraceRecorder()
        kernel.attach_probe(recorder)
        kernel.invoke_syscall("read", core=1)
        kernel.run_service("kernel.tick", core=2)
        assert [b.core for b in recorder.bursts] == [1, 2]

    def test_user_burst(self, kernel):
        recorder = TraceRecorder()
        kernel.attach_probe(recorder)
        addresses = np.array([0x10000, 0x10010], dtype=np.int64)
        kernel.emit_user_burst(addresses, np.ones(2, dtype=np.int64))
        assert recorder.bursts[0].kind == "user"


class TestJitterScale:
    def test_zero_scale_is_deterministic(self, layout):
        bursts = []
        for _ in range(2):
            kernel = Kernel(
                Simulator(), np.random.default_rng(0), layout=layout, jitter_scale=0.0
            )
            recorder = TraceRecorder()
            kernel.attach_probe(recorder)
            kernel.invoke_syscall("read")
            bursts.append(recorder.bursts[0])
        np.testing.assert_array_equal(bursts[0].weights, bursts[1].weights)
        # With zero jitter every weight is the rounded mean.
        service = bursts[0]
        assert service.weights.min() >= 1

    def test_scale_reduces_weight_variance(self, layout):
        def weight_std(scale):
            kernel = Kernel(
                Simulator(),
                np.random.default_rng(0),
                layout=layout,
                jitter_scale=scale,
            )
            recorder = TraceRecorder()
            kernel.attach_probe(recorder)
            totals = []
            for _ in range(200):
                kernel.invoke_syscall("read")
            totals = [b.total_accesses for b in recorder.bursts]
            return np.std(totals)

        assert weight_std(0.1) < weight_std(1.0)

    def test_negative_scale_rejected(self, layout):
        with pytest.raises(ValueError):
            Kernel(
                Simulator(), np.random.default_rng(0), layout=layout, jitter_scale=-1.0
            )


class TestSysctl:
    def test_latency_is_sum_of_three_calls(self, kernel):
        recorder = TraceRecorder()
        kernel.attach_probe(recorder)
        kernel.sysctl_write("kernel/printk", 4)
        kinds = [b.kind for b in recorder.bursts]
        assert kinds == [
            "syscall.open_procsys",
            "syscall.write_procsys",
            "syscall.close",
        ]

    def test_hijacked_syscall_counts_both(self, kernel):
        from repro.sim.kernel.footprint import FootprintStep
        from repro.sim.kernel.syscalls import KernelService

        wrapper = KernelService(
            name="w",
            footprint=kernel.compiler.compile(
                [FootprintStep(function=None, address=0xBF000000, size=0x100)]
            ),
            latency_ns=1_000,
        )
        kernel.syscall_table.hijack("read", wrapper, extra_latency_ns=7_000)
        recorder = TraceRecorder()
        kernel.attach_probe(recorder)
        kernel.invoke_syscall("read")
        assert [b.kind for b in recorder.bursts] == ["hijack.read", "syscall.read"]
        assert kernel.invocation_count("hijack.read") == 1
        assert kernel.invocation_count("syscall.read") == 1

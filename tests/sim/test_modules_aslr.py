"""Tests for the module loader and the ASLR state."""

import numpy as np
import pytest

from repro.sim.kernel.aslr import RANDOMIZE_VA_SPACE, AslrState
from repro.sim.kernel.layout import (
    KERNEL_TEXT_BASE,
    KERNEL_TEXT_END,
    MODULE_SPACE_BASE,
    MODULE_SPACE_SIZE,
)


class TestModuleLoader:
    def test_load_allocates_outside_monitored_region(self, platform):
        module = platform.kernel.modules.load("mod_a", 8 * 1024)
        assert module.base_address >= MODULE_SPACE_BASE
        assert module.end_address <= MODULE_SPACE_BASE + MODULE_SPACE_SIZE
        assert module.end_address <= KERNEL_TEXT_BASE  # never in .text
        assert not platform.spec.contains(module.base_address)

    def test_load_emits_init_module_footprint(self, platform):
        before = platform.kernel.invocation_count("syscall.init_module")
        platform.kernel.modules.load("mod_a", 4096)
        assert platform.kernel.invocation_count("syscall.init_module") == before + 1

    def test_function_partitioning(self, platform):
        module = platform.kernel.modules.load(
            "mod_fn", 12 * 1024, function_names=["f1", "f2", "f3"]
        )
        assert [fn.name for fn in module.functions] == ["f1", "f2", "f3"]
        # Contiguous, non-overlapping, covering the module exactly.
        cursor = module.base_address
        for fn in module.functions:
            assert fn.address == cursor
            assert fn.size > 0
            cursor = fn.end_address
        assert cursor == module.end_address
        assert module.function("f2").name == "f2"
        with pytest.raises(KeyError):
            module.function("nope")

    def test_two_modules_do_not_overlap(self, platform):
        a = platform.kernel.modules.load("mod_a", 4096)
        b = platform.kernel.modules.load("mod_b", 4096)
        assert b.base_address >= a.end_address

    def test_double_load_rejected(self, platform):
        platform.kernel.modules.load("mod_a", 4096)
        with pytest.raises(ValueError, match="already loaded"):
            platform.kernel.modules.load("mod_a", 4096)

    def test_unload(self, platform):
        platform.kernel.modules.load("mod_a", 4096)
        before = platform.kernel.invocation_count("syscall.delete_module")
        platform.kernel.modules.unload("mod_a")
        assert not platform.kernel.modules.is_loaded("mod_a")
        assert (
            platform.kernel.invocation_count("syscall.delete_module") == before + 1
        )

    def test_unload_unknown_rejected(self, platform):
        with pytest.raises(KeyError):
            platform.kernel.modules.unload("ghost")

    def test_bad_size_rejected(self, platform):
        with pytest.raises(ValueError):
            platform.kernel.modules.load("mod_a", 0)

    def test_loaded_modules_listing(self, platform):
        platform.kernel.modules.load("mod_b", 4096)
        platform.kernel.modules.load("mod_a", 4096)
        assert platform.kernel.modules.loaded_modules == ["mod_a", "mod_b"]


class TestAslrState:
    def test_default_enabled(self):
        state = AslrState()
        assert state.enabled
        assert state.randomize_va_space == 2

    def test_sysctl_write_disables(self):
        state = AslrState()
        state.sysctl_write(0, time_ns=123)
        assert not state.enabled
        assert state.change_log == [(123, 0)]

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError):
            AslrState().sysctl_write(3)

    def test_randomize_base_when_enabled(self):
        state = AslrState()
        rng = np.random.default_rng(0)
        bases = {state.randomize_base(0x8000, rng) for _ in range(20)}
        assert len(bases) > 1
        assert all(b >= 0x8000 and b % 0x1000 == 0 for b in bases)

    def test_randomize_base_when_disabled(self):
        state = AslrState(randomize_va_space=0)
        rng = np.random.default_rng(0)
        assert state.randomize_base(0x8000, rng) == 0x8000


class TestKernelSysctl:
    def test_sysctl_write_flips_aslr_and_emits_footprints(self, platform):
        kernel = platform.kernel
        before_open = kernel.invocation_count("syscall.open_procsys")
        before_write = kernel.invocation_count("syscall.write_procsys")
        latency = kernel.sysctl_write(RANDOMIZE_VA_SPACE, 0)
        assert latency > 0
        assert not kernel.aslr.enabled
        assert kernel.invocation_count("syscall.open_procsys") == before_open + 1
        assert kernel.invocation_count("syscall.write_procsys") == before_write + 1

    def test_sysctl_write_other_path_leaves_aslr(self, platform):
        platform.kernel.sysctl_write("vm/overcommit_memory", 1)
        assert platform.kernel.aslr.enabled

"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import NS_PER_MS, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule_at(30, log.append, "c")
        sim.schedule_at(10, log.append, "a")
        sim.schedule_at(20, log.append, "b")
        sim.run_until(100)
        assert log == ["a", "b", "c"]

    def test_same_time_events_run_fifo(self):
        sim = Simulator()
        log = []
        for label in "abcde":
            sim.schedule_at(10, log.append, label)
        sim.run_until(10)
        assert log == list("abcde")

    def test_now_advances_during_callbacks(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(5, lambda: seen.append(sim.now))
        sim.schedule_at(9, lambda: seen.append(sim.now))
        sim.run_until(20)
        assert seen == [5, 9]
        assert sim.now == 20

    def test_schedule_after(self):
        sim = Simulator()
        sim.run_until(50)
        fired = []
        sim.schedule_after(25, fired.append, True)
        sim.run_until(74)
        assert fired == []
        sim.run_until(75)
        assert fired == [True]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.run_until(100)
        with pytest.raises(ValueError, match="past"):
            sim.schedule_at(99, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Simulator().schedule_after(-1, lambda: None)

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulator()
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                sim.schedule_after(10, chain, n + 1)

        sim.schedule_at(0, chain, 0)
        sim.run_until(100)
        assert log == [0, 1, 2, 3]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_at(10, fired.append, 1)
        sim.cancel(handle)
        sim.run_until(20)
        assert fired == []

    def test_cancel_twice_is_safe(self):
        sim = Simulator()
        handle = sim.schedule_at(10, lambda: None)
        sim.cancel(handle)
        sim.cancel(handle)
        assert sim.run_until(20) == 0

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule_at(10, lambda: None)
        drop = sim.schedule_at(10, lambda: None)
        sim.cancel(drop)
        assert sim.pending_events == 1
        sim.cancel(keep)
        assert sim.pending_events == 0


class TestPeriodic:
    def test_periodic_fires_at_multiples(self):
        sim = Simulator()
        times = []
        sim.schedule_periodic(10, lambda: times.append(sim.now))
        sim.run_until(35)
        assert times == [10, 20, 30]

    def test_periodic_with_explicit_start(self):
        sim = Simulator()
        times = []
        sim.schedule_periodic(10, lambda: times.append(sim.now), start_at=5)
        sim.run_until(30)
        assert times == [5, 15, 25]

    def test_periodic_cancellation_stops_recurrence(self):
        sim = Simulator()
        times = []
        handle = sim.schedule_periodic(10, lambda: times.append(sim.now))
        sim.run_until(25)
        sim.cancel(handle)
        sim.run_until(100)
        assert times == [10, 20]

    def test_periodic_rejects_bad_period(self):
        with pytest.raises(ValueError, match="period"):
            Simulator().schedule_periodic(0, lambda: None)

    def test_periodic_rejects_past_start(self):
        sim = Simulator()
        sim.run_until(100)
        with pytest.raises(ValueError, match="before now"):
            sim.schedule_periodic(10, lambda: None, start_at=50)


class TestRunSemantics:
    def test_run_until_returns_executed_count(self):
        sim = Simulator()
        for t in (1, 2, 3):
            sim.schedule_at(t, lambda: None)
        assert sim.run_until(2) == 2
        assert sim.run_until(10) == 1

    def test_run_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(10)
        with pytest.raises(ValueError, match="before now"):
            sim.run_until(5)

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested():
            sim.run_until(100)

        sim.schedule_at(1, nested)
        with pytest.raises(RuntimeError, match="re-entrantly"):
            sim.run_until(10)

    def test_run_for(self):
        sim = Simulator()
        sim.run_until(7)
        sim.run_for(3 * NS_PER_MS)
        assert sim.now == 7 + 3 * NS_PER_MS

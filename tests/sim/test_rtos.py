"""Tests for the RTOS-like platform mode (paper Section 7)."""

import numpy as np
import pytest

from repro.sim.engine import NS_PER_SEC
from repro.sim.platform import Platform, PlatformConfig
from repro.sim.workloads.rtos import RTOS_JITTER_SCALE, rtos_config, rtos_taskset


class TestRtosTaskset:
    def test_harmonic_periods(self):
        periods = [t.period_ns for t in rtos_taskset()]
        base = min(periods)
        for period in periods:
            assert period % base == 0

    def test_memory_locked(self):
        for task in rtos_taskset():
            assert task.pagefaults_per_job == 0.0

    def test_low_jitter(self):
        for task in rtos_taskset():
            assert task.exec_jitter <= 0.01

    def test_utilization_comparable_to_paper(self):
        total = sum(t.utilization for t in rtos_taskset())
        assert 0.7 <= total <= 0.85

    def test_schedulable(self):
        platform = Platform(rtos_config(seed=1))
        platform.run_for(2 * NS_PER_SEC)
        for name in platform.scheduler.task_names:
            assert platform.scheduler.task(name).stats.deadline_misses == 0


class TestRtosConfig:
    def test_jitter_scale_applied(self):
        config = rtos_config(seed=1)
        assert config.kernel_jitter_scale == RTOS_JITTER_SCALE
        platform = Platform(config)
        assert platform.kernel.jitter_scale == RTOS_JITTER_SCALE

    def test_overrides(self):
        config = rtos_config(seed=5, interval_ns=20_000_000)
        assert config.seed == 5
        assert config.interval_ns == 20_000_000

    def test_negative_jitter_scale_rejected(self):
        with pytest.raises(ValueError):
            PlatformConfig(kernel_jitter_scale=-0.1)


class TestRtosDeterminism:
    """The paper's Section 7 claim: more deterministic memory usage."""

    def test_rtos_heatmaps_are_tighter(self):
        rtos_matrix = Platform(rtos_config(seed=3)).collect_intervals(100).matrix()
        linux_matrix = (
            Platform(PlatformConfig(seed=3)).collect_intervals(100).matrix()
        )

        def mean_relative_spread(matrix):
            mean = matrix.mean(axis=0)
            hot = mean > 10
            return float((matrix.std(axis=0)[hot] / mean[hot]).mean())

        assert mean_relative_spread(rtos_matrix) < mean_relative_spread(
            linux_matrix
        )

    def test_fewer_distinct_phases(self):
        """Harmonic 80 ms hyperperiod -> at most 8 interval phases
        (Linux-like set has 10)."""
        series = Platform(rtos_config(seed=4)).collect_intervals(80)
        volumes = series.traffic_volumes().astype(float)
        by_phase_8 = [volumes[i::8].std() for i in range(8)]
        # Within-phase variation is far below the overall variation.
        assert np.mean(by_phase_8) < 0.5 * volumes.std()

"""Tests for footprint compilation and sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel.footprint import (
    FETCH_STRIDE,
    CompiledFootprint,
    FootprintCompiler,
    FootprintStep,
)


@pytest.fixture(scope="module")
def compiler(request):
    layout = request.getfixturevalue("layout")
    return FootprintCompiler(layout)


class TestStepValidation:
    def test_requires_function_or_range(self):
        with pytest.raises(ValueError, match="function name or an explicit range"):
            FootprintStep(function=None)

    def test_explicit_range_ok(self):
        step = FootprintStep(function=None, address=0x1000, size=0x100)
        assert step.address == 0x1000

    def test_rejects_nonpositive_iterations(self):
        with pytest.raises(ValueError, match="iterations"):
            FootprintStep(function="schedule", iterations=0)

    def test_rejects_bad_coverage(self):
        with pytest.raises(ValueError, match="coverage"):
            FootprintStep(function="schedule", coverage=0.0)
        with pytest.raises(ValueError, match="coverage"):
            FootprintStep(function="schedule", coverage=1.5)

    def test_rejects_negative_jitter(self):
        with pytest.raises(ValueError, match="jitter"):
            FootprintStep(function="schedule", jitter=-0.1)

    def test_rejects_nonpositive_explicit_size(self):
        with pytest.raises(ValueError, match="size"):
            FootprintStep(function=None, address=0x1000, size=0)


class TestCompilation:
    def test_addresses_cover_function_at_stride(self, compiler, layout):
        fn = layout.symbol("schedule")
        footprint = compiler.compile([FootprintStep(function="schedule")])
        expected = np.arange(fn.address, fn.end_address, FETCH_STRIDE)
        np.testing.assert_array_equal(footprint.addresses, expected)

    def test_coverage_limits_addresses(self, compiler, layout):
        fn = layout.symbol("schedule")
        full = compiler.compile([FootprintStep(function="schedule")])
        half = compiler.compile([FootprintStep(function="schedule", coverage=0.5)])
        assert 0 < half.num_addresses < full.num_addresses
        # Covered prefix starts at the function entry.
        assert half.addresses[0] == fn.address

    def test_multi_step_concatenation(self, compiler):
        footprint = compiler.compile(
            [
                FootprintStep(function="sys_read"),
                FootprintStep(function="vfs_read", iterations=3.0),
            ]
        )
        assert footprint.num_steps == 2
        assert footprint.step_lengths.sum() == footprint.num_addresses
        np.testing.assert_array_equal(footprint.mean_iterations, [1.0, 3.0])

    def test_explicit_range_step(self, compiler):
        footprint = compiler.compile(
            [FootprintStep(function=None, address=0xBF000000, size=0x200)]
        )
        assert footprint.addresses[0] == 0xBF000000
        assert footprint.addresses[-1] < 0xBF000200

    def test_empty_footprint_rejected(self, compiler):
        with pytest.raises(ValueError, match="at least one step"):
            compiler.compile([])

    def test_bad_stride_rejected(self, layout):
        with pytest.raises(ValueError, match="stride"):
            FootprintCompiler(layout, stride=0)

    def test_small_function_yields_at_least_one_address(self, compiler, layout):
        # sys_getpid is 0x40 bytes; with tiny coverage it must still
        # produce a fetch.
        footprint = compiler.compile(
            [FootprintStep(function="sys_getpid", coverage=0.01)]
        )
        assert footprint.num_addresses >= 1


class TestSampling:
    def test_sample_shapes(self, compiler, rng):
        footprint = compiler.compile(
            [
                FootprintStep(function="sys_read", iterations=2.0),
                FootprintStep(function="memcpy", iterations=5.0),
            ]
        )
        addresses, weights = footprint.sample(rng)
        assert addresses.shape == weights.shape
        assert (weights >= 1).all()

    def test_weights_constant_within_step(self, compiler, rng):
        footprint = compiler.compile(
            [
                FootprintStep(function="sys_read", iterations=4.0),
                FootprintStep(function="memcpy", iterations=9.0),
            ]
        )
        _, weights = footprint.sample(rng)
        lengths = footprint.step_lengths
        first = weights[: lengths[0]]
        second = weights[lengths[0] :]
        assert len(set(first.tolist())) == 1
        assert len(set(second.tolist())) == 1

    def test_zero_jitter_gives_mean(self, compiler, rng):
        footprint = compiler.compile(
            [FootprintStep(function="sys_read", iterations=3.0, jitter=0.0)]
        )
        _, weights = footprint.sample(rng)
        assert (weights == 3).all()

    def test_mean_burst_is_deterministic(self, compiler):
        footprint = compiler.compile(
            [FootprintStep(function="sys_read", iterations=2.6)]
        )
        addresses_a, weights_a = footprint.mean()
        addresses_b, weights_b = footprint.mean()
        np.testing.assert_array_equal(addresses_a, addresses_b)
        np.testing.assert_array_equal(weights_a, weights_b)
        assert (weights_a == 3).all()  # rint(2.6)

    def test_mean_total_accesses(self, compiler):
        footprint = compiler.compile(
            [FootprintStep(function="sys_read", iterations=2.0)]
        )
        assert footprint.mean_total_accesses == 2.0 * footprint.num_addresses

    def test_addresses_are_readonly(self, compiler):
        footprint = compiler.compile([FootprintStep(function="sys_read")])
        with pytest.raises(ValueError):
            footprint.addresses[0] = 0

    @given(iterations=st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=50, deadline=None)
    def test_sampled_weights_never_below_one(self, iterations):
        footprint = CompiledFootprint(
            addresses=np.arange(10),
            step_lengths=np.array([10]),
            mean_iterations=np.array([iterations]),
            jitters=np.array([0.5]),
        )
        rng = np.random.default_rng(0)
        for _ in range(20):
            _, weights = footprint.sample(rng)
            assert (weights >= 1).all()


class TestCompiledValidation:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cover"):
            CompiledFootprint(
                addresses=np.arange(5),
                step_lengths=np.array([3]),
                mean_iterations=np.array([1.0]),
                jitters=np.array([0.1]),
            )

    def test_per_step_arrays_must_match(self):
        with pytest.raises(ValueError, match="equal length"):
            CompiledFootprint(
                addresses=np.arange(5),
                step_lengths=np.array([5]),
                mean_iterations=np.array([1.0, 2.0]),
                jitters=np.array([0.1]),
            )

"""Property-based tests for the event engine (determinism guarantees)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator


class TestOrderingProperties:
    @given(times=st.lists(st.integers(min_value=0, max_value=10_000), max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_events_fire_in_time_then_insertion_order(self, times):
        sim = Simulator()
        fired = []
        for insertion_index, time_ns in enumerate(times):
            sim.schedule_at(time_ns, fired.append, (time_ns, insertion_index))
        sim.run_until(10_000)
        assert fired == sorted(fired)  # (time, insertion index) lexicographic
        assert len(fired) == len(times)

    @given(
        times=st.lists(st.integers(min_value=0, max_value=1_000), max_size=40),
        cancel_mask=st.lists(st.booleans(), max_size=40),
    )
    @settings(max_examples=100, deadline=None)
    def test_cancelled_events_never_fire(self, times, cancel_mask):
        sim = Simulator()
        fired = []
        handles = [
            sim.schedule_at(t, fired.append, i) for i, t in enumerate(times)
        ]
        cancelled = set()
        for i, (handle, cancel) in enumerate(zip(handles, cancel_mask)):
            if cancel:
                sim.cancel(handle)
                cancelled.add(i)
        sim.run_until(1_000)
        assert set(fired) == set(range(len(times))) - cancelled

    @given(
        boundary=st.integers(min_value=0, max_value=1_000),
        times=st.lists(st.integers(min_value=0, max_value=1_000), max_size=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_run_until_is_exact_boundary(self, boundary, times):
        sim = Simulator()
        fired = []
        for t in times:
            sim.schedule_at(t, fired.append, t)
        sim.run_until(boundary)
        assert all(t <= boundary for t in fired)
        assert sorted(fired) == sorted(t for t in times if t <= boundary)
        assert sim.now == boundary

    @given(
        period=st.integers(min_value=1, max_value=50),
        horizon=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=100, deadline=None)
    def test_periodic_fires_exactly_floor_times(self, period, horizon):
        sim = Simulator()
        count = [0]
        sim.schedule_periodic(period, lambda: count.__setitem__(0, count[0] + 1))
        sim.run_until(horizon)
        assert count[0] == horizon // period

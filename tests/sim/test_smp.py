"""Tests for SMP support (Limitation §5.5)."""

import numpy as np
import pytest

from repro.sim.engine import NS_PER_MS, NS_PER_SEC
from repro.sim.platform import Platform, PlatformConfig
from repro.sim.smp import partition_tasks, per_core_utilization
from repro.sim.task import TaskDefinition
from repro.sim.workloads.mibench import paper_taskset, qsort_task


class TestPartitioning:
    def test_paper_taskset_on_two_cores(self):
        tasks = partition_tasks(paper_taskset(), 2)
        loads = per_core_utilization(tasks, 2)
        assert len(loads) == 2
        assert sum(loads) == pytest.approx(0.78)
        # Worst-fit-decreasing balances: no core above 50 % here.
        assert max(loads) <= 0.5

    def test_preserves_order_and_names(self):
        tasks = partition_tasks(paper_taskset(), 2)
        assert [t.name for t in tasks] == [t.name for t in paper_taskset()]

    def test_single_core_is_identity_assignment(self):
        tasks = partition_tasks(paper_taskset(), 1)
        assert all(t.core == 0 for t in tasks)

    def test_unpartitionable_set_rejected(self):
        heavy = [
            TaskDefinition(name=f"t{i}", exec_time_ns=9 * NS_PER_MS, period_ns=10 * NS_PER_MS)
            for i in range(3)
        ]
        with pytest.raises(ValueError, match="does not fit"):
            partition_tasks(heavy, 2)

    def test_bad_core_count(self):
        with pytest.raises(ValueError):
            partition_tasks(paper_taskset(), 0)

    def test_per_core_utilization_validates_assignment(self):
        tasks = [qsort_task().on_core(3)]
        with pytest.raises(ValueError, match="outside"):
            per_core_utilization(tasks, 2)


class TestSmpPlatform:
    @pytest.fixture()
    def smp_platform(self):
        tasks = partition_tasks(paper_taskset(), 2)
        return Platform(
            PlatformConfig(seed=11, monitored_cores=2, tasks=tuple(tasks))
        )

    def test_config_validates_task_cores(self):
        with pytest.raises(ValueError, match="targets core"):
            PlatformConfig(tasks=(qsort_task().on_core(1),), monitored_cores=1)

    def test_two_schedulers_share_one_memometer(self, smp_platform):
        assert len(smp_platform.schedulers) == 2
        series = smp_platform.collect_intervals(20)
        # Single MHM memory aggregates both cores' kernel activity:
        # roughly double the single-core volume.
        single = Platform(PlatformConfig(seed=11)).collect_intervals(20)
        assert (
            series.traffic_volumes().mean()
            > 1.3 * single.traffic_volumes().mean()
        )

    def test_tasks_run_on_their_cores(self, smp_platform):
        smp_platform.run_for(NS_PER_SEC)
        for scheduler in smp_platform.schedulers:
            for name in scheduler.task_names:
                stats = scheduler.task(name).stats
                assert stats.completions > 0, name
                assert stats.deadline_misses == 0, name

    def test_bursts_tagged_with_core(self, smp_platform):
        from repro.sim.trace import TraceRecorder

        recorder = TraceRecorder()
        smp_platform.kernel.attach_probe(recorder)
        smp_platform.run_for(100 * NS_PER_MS)
        cores = {b.core for b in recorder.bursts if b.kind.startswith("syscall.")}
        assert cores == {0, 1}

    def test_launch_and_kill_on_second_core(self, smp_platform):
        smp_platform.processes.launch(qsort_task().on_core(1))
        assert "qsort" in smp_platform.schedulers[1].task_names
        assert "qsort" not in smp_platform.schedulers[0].task_names
        smp_platform.run_for(100 * NS_PER_MS)
        smp_platform.processes.kill("qsort")
        assert "qsort" not in smp_platform.schedulers[1].task_names

    def test_launch_to_missing_core_rejected(self, smp_platform):
        with pytest.raises(ValueError, match="monitored core"):
            smp_platform.processes.launch(qsort_task().on_core(5))

    def test_smp_reproducible(self):
        tasks = tuple(partition_tasks(paper_taskset(), 2))
        config = PlatformConfig(seed=12, monitored_cores=2, tasks=tasks)
        a = Platform(config).collect_intervals(15).matrix()
        b = Platform(config).collect_intervals(15).matrix()
        np.testing.assert_array_equal(a, b)

"""Tests for kernel services and the syscall table."""

import numpy as np
import pytest

from repro.sim.kernel.footprint import FootprintCompiler, FootprintStep
from repro.sim.kernel.syscalls import (
    DEFAULT_SYSCALLS,
    KernelService,
    ServiceRegistry,
    SyscallTable,
    build_default_services,
)


@pytest.fixture(scope="module")
def services(request):
    layout = request.getfixturevalue("layout")
    return build_default_services(layout)


@pytest.fixture(scope="module")
def registry(services):
    return services[0]


@pytest.fixture(scope="module")
def table(services):
    return services[1]


def _toy_service(layout, name="toy"):
    compiler = FootprintCompiler(layout)
    footprint = compiler.compile([FootprintStep(function="sys_getpid")])
    return KernelService(name=name, footprint=footprint, latency_ns=1_000)


class TestRegistry:
    def test_register_and_get(self, layout):
        registry = ServiceRegistry()
        service = registry.register(_toy_service(layout))
        assert registry.get("toy") is service
        assert "toy" in registry
        assert len(registry) == 1

    def test_duplicate_rejected(self, layout):
        registry = ServiceRegistry()
        registry.register(_toy_service(layout))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(_toy_service(layout))

    def test_unknown_service(self):
        with pytest.raises(KeyError, match="unknown kernel service"):
            ServiceRegistry().get("nope")


class TestDefaultServices:
    def test_every_syscall_has_a_service(self, registry, table):
        for name in DEFAULT_SYSCALLS:
            assert name in table
            assert registry.get(f"syscall.{name}") is table.entry(name)

    @pytest.mark.parametrize(
        "name",
        [
            "kernel.tick",
            "kernel.context_switch",
            "kernel.job_release",
            "kernel.page_fault",
            "kernel.idle",
            "kernel.kworker",
        ],
    )
    def test_housekeeping_services_exist(self, registry, name):
        assert name in registry

    def test_syscall_services_share_entry_path(self, registry, layout):
        """Every syscall footprint fetches the SWI vector and entry stub."""
        vector = layout.symbol("vector_swi")
        for name in ("read", "write", "open", "fork", "exit_group"):
            service = registry.get(f"syscall.{name}")
            addresses = service.footprint.addresses
            in_vector = (addresses >= vector.address) & (
                addresses < vector.end_address
            )
            assert in_vector.any(), name

    def test_read_touches_vfs(self, registry, layout):
        vfs_read = layout.symbol("vfs_read")
        addresses = registry.get("syscall.read").footprint.addresses
        hit = (addresses >= vfs_read.address) & (addresses < vfs_read.end_address)
        assert hit.any()

    def test_init_module_is_heavy(self, registry):
        """The loader burst must dominate an ordinary syscall (Figure 9)."""
        load = registry.get("syscall.init_module").footprint.mean_total_accesses
        read = registry.get("syscall.read").footprint.mean_total_accesses
        assert load > 20 * read

    def test_latency_sampling_positive(self, registry, rng):
        for name in ("syscall.read", "kernel.tick"):
            service = registry.get(name)
            for _ in range(50):
                assert service.sample_latency(rng) > 0

    def test_kworker_reaches_drivers(self, registry, layout):
        addresses = registry.get("kernel.kworker").footprint.addresses
        subsystems = {layout.subsystem_of(int(a)) for a in addresses}
        assert "drivers" in subsystems


class TestSyscallTable:
    def test_unknown_syscall(self, table):
        with pytest.raises(KeyError, match="unknown syscall"):
            table.entry("frobnicate")

    def test_resolve_unhijacked(self, table):
        service, hijack = table.resolve("read")
        assert service.name == "syscall.read"
        assert hijack is None

    def test_hijack_and_restore(self, layout):
        registry, table = build_default_services(layout)
        wrapper = _toy_service(layout, name="evil")
        table.hijack("read", wrapper, extra_latency_ns=5_000)
        assert table.is_hijacked("read")
        service, hijack = table.resolve("read")
        assert service.name == "syscall.read"  # original still reachable
        assert hijack.wrapper is wrapper
        assert hijack.extra_latency_ns == 5_000
        table.restore("read")
        assert not table.is_hijacked("read")
        assert table.resolve("read")[1] is None

    def test_double_hijack_rejected(self, layout):
        _, table = build_default_services(layout)
        wrapper = _toy_service(layout, name="evil2")
        table.hijack("read", wrapper)
        with pytest.raises(ValueError, match="already hijacked"):
            table.hijack("read", wrapper)

    def test_restore_unhijacked_raises(self, layout):
        _, table = build_default_services(layout)
        with pytest.raises(KeyError):
            table.restore("read")

    def test_syscalls_listing(self, table):
        names = table.syscalls()
        assert "read" in names
        assert names == sorted(names)


class TestServiceSampling:
    def test_burst_addresses_within_footprint(self, registry, rng):
        service = registry.get("syscall.read")
        addresses, weights = service.sample_burst(rng)
        np.testing.assert_array_equal(addresses, service.footprint.addresses)
        assert weights.min() >= 1

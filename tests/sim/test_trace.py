"""Tests for access bursts and probes."""

import numpy as np
import pytest

from repro.sim.trace import AccessBurst, BurstFanout, TraceRecorder


def _burst(addresses, weights=None, kind="test", time_ns=0):
    addresses = np.asarray(addresses, dtype=np.int64)
    if weights is None:
        weights = np.ones_like(addresses)
    return AccessBurst(
        time_ns=time_ns,
        addresses=addresses,
        weights=np.asarray(weights, dtype=np.int64),
        kind=kind,
    )


class TestAccessBurst:
    def test_basic_properties(self):
        burst = _burst([0x100, 0x200], [2, 3])
        assert len(burst) == 2
        assert burst.total_accesses == 5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            _burst([0x100, 0x200], [1])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            _burst([0x100], [-1])

    def test_arrays_frozen(self):
        burst = _burst([0x100])
        with pytest.raises(ValueError):
            burst.addresses[0] = 0
        with pytest.raises(ValueError):
            burst.weights[0] = 0

    def test_uniform_constructor(self):
        burst = AccessBurst.uniform(5, [1, 2, 3], kind="u")
        assert burst.total_accesses == 3
        assert burst.time_ns == 5
        assert burst.kind == "u"

    def test_empty_burst_allowed(self):
        burst = _burst([])
        assert burst.total_accesses == 0


class TestTraceRecorder:
    def test_records_everything(self):
        recorder = TraceRecorder()
        recorder.observe_burst(_burst([0x100], kind="a"))
        recorder.observe_burst(_burst([0x200, 0x300], [2, 2], kind="b"))
        assert len(recorder.bursts) == 2
        assert recorder.total_accesses() == 5
        assert recorder.kinds() == {"a", "b"}
        assert len(recorder.bursts_of_kind("b")) == 1

    def test_clear(self):
        recorder = TraceRecorder()
        recorder.observe_burst(_burst([0x100]))
        recorder.clear()
        assert recorder.total_accesses() == 0


class TestBurstFanout:
    def test_delivers_to_all_in_order(self):
        fanout = BurstFanout()
        seen = []

        class Probe:
            def __init__(self, name):
                self.name = name

            def observe_burst(self, burst):
                seen.append(self.name)

        fanout.attach(Probe("first"))
        fanout.attach(Probe("second"))
        fanout.observe_burst(_burst([0x100]))
        assert seen == ["first", "second"]
        assert len(fanout) == 2

    def test_detach(self):
        fanout = BurstFanout()
        recorder = TraceRecorder()
        fanout.attach(recorder)
        fanout.detach(recorder)
        fanout.observe_burst(_burst([0x100]))
        assert recorder.total_accesses() == 0

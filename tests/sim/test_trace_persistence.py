"""Tests for trace persistence and replay."""

import numpy as np
import pytest

from repro.hw.memometer import ControlRegisters, Memometer
from repro.sim.platform import Platform, PlatformConfig
from repro.sim.trace import AccessBurst, TraceRecorder


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        recorder = TraceRecorder()
        recorder.observe_burst(
            AccessBurst(
                time_ns=10,
                addresses=np.array([0x100, 0x200], dtype=np.int64),
                weights=np.array([1, 5], dtype=np.int64),
                kind="syscall.read",
                core=1,
            )
        )
        recorder.observe_burst(AccessBurst.uniform(20, [0x300], kind="user"))
        path = tmp_path / "trace.npz"
        recorder.save(path)
        restored = TraceRecorder.load(path)
        assert len(restored.bursts) == 2
        first = restored.bursts[0]
        assert first.time_ns == 10
        assert first.kind == "syscall.read"
        assert first.core == 1
        np.testing.assert_array_equal(first.addresses, [0x100, 0x200])
        np.testing.assert_array_equal(first.weights, [1, 5])

    def test_empty_trace(self, tmp_path):
        recorder = TraceRecorder()
        path = tmp_path / "empty.npz"
        recorder.save(path)
        assert TraceRecorder.load(path).bursts == []

    def test_platform_trace_roundtrip(self, tmp_path, platform):
        recorder = TraceRecorder()
        platform.kernel.attach_probe(recorder)
        platform.run_intervals(3)
        path = tmp_path / "platform.npz"
        recorder.save(path)
        restored = TraceRecorder.load(path)
        assert restored.total_accesses() == recorder.total_accesses()
        assert restored.kinds() == recorder.kinds()


class TestReplay:
    def _live_total(self, platform) -> np.ndarray:
        """Everything the live Memometer counted: completed intervals
        plus the in-flight buffer (bursts landing at the final boundary
        instant may already belong to the next interval)."""
        total = platform.heatmap_series().matrix(dtype=np.int64).sum(axis=0)
        return total + platform.memometer.active_counts()

    def test_replay_reproduces_counts(self):
        """A trace replayed into a fresh Memometer rebuilds exactly the
        counts the live run accumulated (cell by cell)."""
        platform = Platform(PlatformConfig(seed=5))
        recorder = TraceRecorder()
        platform.kernel.attach_probe(recorder)
        platform.collect_intervals(3)

        replayed = Memometer(
            ControlRegisters(
                base_address=platform.config.base_address,
                region_size=platform.config.region_size,
                granularity=platform.config.granularity,
                interval_ns=platform.config.interval_ns,
            )
        )
        recorder.replay_into(replayed)
        np.testing.assert_array_equal(
            replayed.active_counts(), self._live_total(platform)
        )

    def test_replay_at_different_granularity(self):
        """Offline re-analysis: the same trace summarised at 8 KB is
        the exact 4-cell fold of the 2 KB summary."""
        platform = Platform(PlatformConfig(seed=6))
        recorder = TraceRecorder()
        platform.kernel.attach_probe(recorder)
        platform.collect_intervals(2)
        fine_total = self._live_total(platform)

        coarse = Memometer(
            ControlRegisters(
                base_address=platform.config.base_address,
                region_size=platform.config.region_size,
                granularity=8192,
                interval_ns=platform.config.interval_ns,
            )
        )
        recorder.replay_into(coarse)
        coarse_counts = coarse.active_counts()
        assert coarse.spec.num_cells == 368
        folded = np.concatenate(
            [fine_total, np.zeros(4 * 368 - len(fine_total), dtype=np.int64)]
        )
        np.testing.assert_array_equal(
            folded.reshape(368, 4).sum(axis=1), coarse_counts
        )


class TestReconfigure:
    def test_reconfigure_resets_state(self):
        registers = ControlRegisters(0x1000, 0x800, 0x100, 10_000_000)
        memometer = Memometer(registers)
        memometer.observe(0x1000)
        memometer.interval_boundary(10_000_000)
        memometer.reconfigure(ControlRegisters(0x0, 0x2000, 0x200, 5_000_000))
        assert memometer.spec.num_cells == 0x2000 // 0x200
        assert memometer.active_counts().sum() == 0
        assert memometer.intervals_completed == 0
        assert memometer.snooped_accesses == 0
        assert memometer.observe(0x40)  # new region accepts new addresses

    def test_reconfigure_validates(self):
        memometer = Memometer(ControlRegisters(0x1000, 0x800, 0x100, 10_000_000))
        with pytest.raises(Exception):
            memometer.reconfigure(
                ControlRegisters(0, 64 * 1024 * 1024, 1024, 10_000_000)
            )

"""Tests for the MemoryHeatMap data structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mhm import MemoryHeatMap
from repro.core.spec import HeatMapSpec


@pytest.fixture()
def mhm(small_spec):
    return MemoryHeatMap(small_spec)


class TestConstruction:
    def test_starts_empty(self, mhm, small_spec):
        assert mhm.total_accesses == 0
        assert mhm.num_cells == small_spec.num_cells
        assert mhm.touched_cells == 0

    def test_initial_counts_copied(self, small_spec):
        counts = np.ones(small_spec.num_cells, dtype=np.int64)
        heat_map = MemoryHeatMap(small_spec, counts)
        counts[0] = 999
        assert heat_map.counts[0] == 1

    def test_rejects_wrong_length(self, small_spec):
        with pytest.raises(ValueError, match="shape"):
            MemoryHeatMap(small_spec, np.zeros(3))

    def test_rejects_negative_counts(self, small_spec):
        counts = np.zeros(small_spec.num_cells, dtype=np.int64)
        counts[0] = -1
        with pytest.raises(ValueError, match="non-negative"):
            MemoryHeatMap(small_spec, counts)


class TestRecording:
    def test_record_in_region(self, mhm, small_spec):
        assert mhm.record(small_spec.base_address)
        assert mhm.counts[0] == 1
        assert mhm.total_accesses == 1

    def test_record_out_of_region_dropped(self, mhm, small_spec):
        assert not mhm.record(small_spec.base_address - 4)
        assert not mhm.record(small_spec.end_address)
        assert mhm.total_accesses == 0

    def test_record_with_count(self, mhm, small_spec):
        mhm.record(small_spec.base_address, count=7)
        assert mhm.counts[0] == 7

    def test_record_negative_count_rejected(self, mhm, small_spec):
        with pytest.raises(ValueError):
            mhm.record(small_spec.base_address, count=-1)

    def test_record_many_mixed(self, mhm, small_spec):
        addresses = np.array(
            [
                small_spec.base_address,  # in, cell 0
                small_spec.base_address + small_spec.granularity,  # in, cell 1
                small_spec.base_address - 1,  # out
                small_spec.end_address - 1,  # in, last cell
            ]
        )
        accepted = mhm.record_many(addresses)
        assert accepted == 3
        assert mhm.counts[0] == 1
        assert mhm.counts[1] == 1
        assert mhm.counts[-1] == 1

    def test_record_many_with_weights(self, mhm, small_spec):
        addresses = np.array([small_spec.base_address, small_spec.base_address - 1])
        weights = np.array([5, 100])
        assert mhm.record_many(addresses, weights) == 5
        assert mhm.counts[0] == 5

    def test_record_many_weight_shape_mismatch(self, mhm, small_spec):
        with pytest.raises(ValueError, match="shape"):
            mhm.record_many(
                np.array([small_spec.base_address]), np.array([1, 2])
            )

    def test_record_many_negative_weights(self, mhm, small_spec):
        with pytest.raises(ValueError, match="non-negative"):
            mhm.record_many(np.array([small_spec.base_address]), np.array([-1]))

    def test_record_range_sweep(self, mhm, small_spec):
        # A linear sweep over one full cell: granularity/stride accesses.
        accepted = mhm.record_range(
            small_spec.base_address, small_spec.granularity, stride=4
        )
        assert accepted == small_spec.granularity // 4
        assert mhm.counts[0] == accepted

    def test_record_range_empty(self, mhm, small_spec):
        assert mhm.record_range(small_spec.base_address, 0) == 0

    def test_reset(self, mhm, small_spec):
        mhm.record(small_spec.base_address)
        mhm.reset()
        assert mhm.total_accesses == 0


class TestInspection:
    def test_hottest_cells(self, mhm, small_spec):
        mhm.record(small_spec.base_address, count=10)
        mhm.record(small_spec.base_address + small_spec.granularity, count=3)
        hottest = mhm.hottest_cells(2)
        assert hottest[0] == (0, 10)
        assert hottest[1] == (1, 3)

    def test_hottest_cells_k_zero(self, mhm):
        assert mhm.hottest_cells(0) == []

    def test_as_vector_is_copy(self, mhm):
        vector = mhm.as_vector()
        vector[0] = 42
        assert mhm.counts[0] == 0


class TestArithmetic:
    def test_addition(self, small_spec):
        a = MemoryHeatMap(small_spec)
        b = MemoryHeatMap(small_spec)
        a.record(small_spec.base_address)
        b.record(small_spec.base_address, count=2)
        total = a + b
        assert total.counts[0] == 3
        assert a.counts[0] == 1  # operands untouched

    def test_iadd(self, small_spec):
        a = MemoryHeatMap(small_spec)
        b = MemoryHeatMap(small_spec)
        b.record(small_spec.base_address)
        a += b
        assert a.counts[0] == 1

    def test_incompatible_specs_rejected(self, small_spec):
        other_spec = HeatMapSpec(0x9000, small_spec.region_size, small_spec.granularity)
        with pytest.raises(ValueError, match="different specs"):
            MemoryHeatMap(small_spec) + MemoryHeatMap(other_spec)

    def test_equality(self, small_spec):
        a = MemoryHeatMap(small_spec)
        b = MemoryHeatMap(small_spec)
        assert a == b
        a.record(small_spec.base_address)
        assert a != b

    def test_copy_preserves_metadata(self, small_spec):
        a = MemoryHeatMap(small_spec, interval_index=5, start_time_ns=123)
        c = a.copy()
        assert c.interval_index == 5
        assert c.start_time_ns == 123
        c.record(small_spec.base_address)
        assert a.total_accesses == 0


class TestSerialisation:
    def test_roundtrip(self, small_spec):
        a = MemoryHeatMap(small_spec, interval_index=3, start_time_ns=70)
        a.record(small_spec.base_address, count=9)
        b = MemoryHeatMap.from_dict(a.to_dict())
        assert a == b
        assert b.interval_index == 3

    def test_stack(self, small_spec):
        maps = [MemoryHeatMap(small_spec) for _ in range(3)]
        maps[1].record(small_spec.base_address)
        matrix = MemoryHeatMap.stack(maps)
        assert matrix.shape == (3, small_spec.num_cells)
        assert matrix[1, 0] == 1

    def test_stack_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            MemoryHeatMap.stack([])

    def test_stack_mixed_specs_rejected(self, small_spec):
        other = HeatMapSpec(0x9000, 0x800, 0x100)
        with pytest.raises(ValueError, match="different specs"):
            MemoryHeatMap.stack([MemoryHeatMap(small_spec), MemoryHeatMap(other)])


class TestProperties:
    @given(
        data=st.lists(
            st.tuples(
                st.integers(min_value=-0x200, max_value=0xA00),
                st.integers(min_value=0, max_value=20),
            ),
            max_size=50,
        )
    )
    @settings(max_examples=100)
    def test_record_many_equals_scalar_loop(self, data):
        """The vectorised path must agree with repeated scalar records."""
        spec = HeatMapSpec(0x1000, 0x800, 0x100)
        vector_map = MemoryHeatMap(spec)
        scalar_map = MemoryHeatMap(spec)
        addresses = np.array([spec.base_address + off for off, _ in data], dtype=np.int64)
        weights = np.array([w for _, w in data], dtype=np.int64)
        if len(data):
            vector_map.record_many(addresses, weights)
        for address, weight in zip(addresses, weights):
            if spec.contains(int(address)):
                scalar_map.record(int(address), count=int(weight))
        assert vector_map == scalar_map

    @given(count=st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=50)
    def test_total_matches_recorded(self, count):
        spec = HeatMapSpec(0, 0x100, 0x10)
        heat_map = MemoryHeatMap(spec)
        heat_map.record(0x50, count=count)
        assert heat_map.total_accesses == count

"""Tests for the heat-map region spec (the hardware address formula)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spec import HeatMapSpec


class TestValidation:
    def test_paper_parameters(self, paper_spec):
        # Figure 1: 3,013,284 bytes at 2 KB granularity -> 1,472 cells.
        assert paper_spec.num_cells == 1472
        assert paper_spec.shift == 11
        assert paper_spec.end_address == 0xC02E7AA4

    def test_rejects_non_power_of_two_granularity(self):
        with pytest.raises(ValueError, match="power of two"):
            HeatMapSpec(0x1000, 0x1000, granularity=1000)

    def test_rejects_zero_granularity(self):
        with pytest.raises(ValueError, match="power of two"):
            HeatMapSpec(0x1000, 0x1000, granularity=0)

    def test_rejects_negative_base(self):
        with pytest.raises(ValueError, match="base_address"):
            HeatMapSpec(-1, 0x1000, granularity=0x100)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError, match="region_size"):
            HeatMapSpec(0x1000, 0, granularity=0x100)

    def test_granularity_one_is_allowed(self):
        spec = HeatMapSpec(0, 16, granularity=1)
        assert spec.num_cells == 16
        assert spec.shift == 0

    def test_partial_final_cell(self):
        spec = HeatMapSpec(0, 1000, granularity=256)
        assert spec.num_cells == 4  # ceil(1000 / 256)
        start, end = spec.cell_range(3)
        assert start == 768
        assert end == 1000  # clipped to the region end


class TestCellArithmetic:
    def test_base_address_is_cell_zero(self, small_spec):
        assert small_spec.cell_index(small_spec.base_address) == 0

    def test_last_byte_is_last_cell(self, small_spec):
        assert (
            small_spec.cell_index(small_spec.end_address - 1)
            == small_spec.num_cells - 1
        )

    def test_cell_boundaries(self, small_spec):
        g = small_spec.granularity
        base = small_spec.base_address
        assert small_spec.cell_index(base + g - 1) == 0
        assert small_spec.cell_index(base + g) == 1

    def test_out_of_region_raises(self, small_spec):
        with pytest.raises(ValueError, match="outside region"):
            small_spec.cell_index(small_spec.base_address - 1)
        with pytest.raises(ValueError, match="outside region"):
            small_spec.cell_index(small_spec.end_address)

    def test_contains(self, small_spec):
        assert small_spec.contains(small_spec.base_address)
        assert small_spec.contains(small_spec.end_address - 1)
        assert not small_spec.contains(small_spec.base_address - 1)
        assert not small_spec.contains(small_spec.end_address)

    def test_cell_range_roundtrip(self, small_spec):
        for idx in range(small_spec.num_cells):
            start, end = small_spec.cell_range(idx)
            assert small_spec.cell_index(start) == idx
            assert small_spec.cell_index(end - 1) == idx

    def test_cell_range_bad_index(self, small_spec):
        with pytest.raises(IndexError):
            small_spec.cell_range(small_spec.num_cells)
        with pytest.raises(IndexError):
            small_spec.cell_start(-1)

    def test_vectorised_matches_scalar(self, small_spec):
        addresses = np.arange(
            small_spec.base_address - 0x100, small_spec.end_address + 0x100, 7
        )
        indices, in_region = small_spec.cell_indices(addresses)
        expected_mask = np.array([small_spec.contains(int(a)) for a in addresses])
        np.testing.assert_array_equal(in_region, expected_mask)
        expected_indices = [
            small_spec.cell_index(int(a)) for a in addresses[expected_mask]
        ]
        np.testing.assert_array_equal(indices, expected_indices)

    def test_vectorised_empty_input(self, small_spec):
        indices, in_region = small_spec.cell_indices(np.array([], dtype=np.int64))
        assert indices.size == 0
        assert in_region.size == 0


class TestSerialisation:
    def test_roundtrip(self, paper_spec):
        assert HeatMapSpec.from_dict(paper_spec.to_dict()) == paper_spec

    def test_with_granularity(self, paper_spec):
        coarse = paper_spec.with_granularity(8192)
        assert coarse.num_cells == 368  # the Section 5.4 variant
        assert coarse.base_address == paper_spec.base_address
        assert coarse.region_size == paper_spec.region_size


@st.composite
def specs(draw):
    base = draw(st.integers(min_value=0, max_value=2**40))
    size = draw(st.integers(min_value=1, max_value=2**24))
    granularity = 1 << draw(st.integers(min_value=0, max_value=16))
    return HeatMapSpec(base, size, granularity)


class TestProperties:
    @given(spec=specs(), offset=st.integers(min_value=0, max_value=2**24 - 1))
    @settings(max_examples=200)
    def test_index_formula_matches_division(self, spec, offset):
        """idx = offset >> g must equal floor(offset / delta) (paper 3.1)."""
        if offset >= spec.region_size:
            return
        address = spec.base_address + offset
        assert spec.cell_index(address) == offset // spec.granularity

    @given(spec=specs(), offset=st.integers(min_value=0, max_value=2**24 - 1))
    @settings(max_examples=200)
    def test_index_always_in_range(self, spec, offset):
        if offset >= spec.region_size:
            return
        idx = spec.cell_index(spec.base_address + offset)
        assert 0 <= idx < spec.num_cells

    @given(spec=specs())
    @settings(max_examples=100, deadline=None)
    def test_cells_cover_region_exactly(self, spec):
        if spec.num_cells > 20_000:  # keep the Python loop bounded
            return
        covered = sum(
            end - start
            for start, end in (spec.cell_range(i) for i in range(spec.num_cells))
        )
        assert covered == spec.region_size

"""Tests for HeatMapSeries."""

import numpy as np
import pytest

from repro.core.mhm import MemoryHeatMap
from repro.core.series import HeatMapSeries
from repro.core.spec import HeatMapSpec


@pytest.fixture()
def series(small_spec):
    result = HeatMapSeries(small_spec)
    for i in range(5):
        heat_map = MemoryHeatMap(small_spec, interval_index=i, start_time_ns=i * 10)
        heat_map.record(small_spec.base_address, count=i + 1)
        result.append(heat_map)
    return result


class TestCollection:
    def test_length_and_iteration(self, series):
        assert len(series) == 5
        assert [m.interval_index for m in series] == [0, 1, 2, 3, 4]

    def test_indexing(self, series):
        assert series[0].interval_index == 0
        assert series[-1].interval_index == 4

    def test_slicing_returns_series(self, series):
        tail = series[2:]
        assert isinstance(tail, HeatMapSeries)
        assert len(tail) == 3
        assert tail[0].interval_index == 2

    def test_spec_mismatch_rejected(self, series):
        other = HeatMapSpec(0x9000, 0x800, 0x100)
        with pytest.raises(ValueError, match="spec"):
            series.append(MemoryHeatMap(other))

    def test_concatenation(self, series, small_spec):
        other = HeatMapSeries(small_spec, [MemoryHeatMap(small_spec)])
        combined = series + other
        assert len(combined) == 6

    def test_concatenation_spec_mismatch(self, series):
        other = HeatMapSeries(HeatMapSpec(0x9000, 0x800, 0x100))
        with pytest.raises(ValueError, match="specs"):
            series + other


class TestViews:
    def test_matrix_shape_and_values(self, series, small_spec):
        matrix = series.matrix()
        assert matrix.shape == (5, small_spec.num_cells)
        np.testing.assert_array_equal(matrix[:, 0], [1, 2, 3, 4, 5])

    def test_empty_matrix(self, small_spec):
        matrix = HeatMapSeries(small_spec).matrix()
        assert matrix.shape == (0, small_spec.num_cells)

    def test_traffic_volumes(self, series):
        np.testing.assert_array_equal(series.traffic_volumes(), [1, 2, 3, 4, 5])

    def test_mean_map(self, series):
        mean = series.mean_map()
        assert mean.counts[0] == 3  # mean of 1..5

    def test_mean_of_empty_rejected(self, small_spec):
        with pytest.raises(ValueError, match="empty"):
            HeatMapSeries(small_spec).mean_map()

    def test_split(self, series):
        head, tail = series.split(0.6)
        assert len(head) == 3
        assert len(tail) == 2
        assert head[0].interval_index == 0
        assert tail[0].interval_index == 3

    def test_split_bad_fraction(self, series):
        with pytest.raises(ValueError):
            series.split(0.0)
        with pytest.raises(ValueError):
            series.split(1.0)


class TestPersistence:
    def test_save_load_roundtrip(self, series, tmp_path):
        path = tmp_path / "series.npz"
        series.save(path)
        loaded = HeatMapSeries.load(path)
        assert len(loaded) == len(series)
        assert loaded.spec == series.spec
        for original, restored in zip(series, loaded):
            assert original == restored
            assert original.interval_index == restored.interval_index
            assert original.start_time_ns == restored.start_time_ns

    def test_from_matrix(self, small_spec):
        matrix = np.arange(2 * small_spec.num_cells).reshape(2, -1)
        series = HeatMapSeries.from_matrix(small_spec, matrix)
        assert len(series) == 2
        np.testing.assert_array_equal(series.matrix(), matrix)
        assert series[1].interval_index == 1

"""Differential tests: vectorized backend against the scalar oracle.

Every kernel in :mod:`repro.kernels.vectorized` is held to the
independently written pure-Python reference in
:mod:`repro.kernels.reference` on hypothesis-generated inputs —
bit-identical for integer counting, within 1e-9 for floating point —
and the end-to-end pipeline must produce the same MHM counts and the
same anomaly verdicts under either backend.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.kernels import reference, vectorized
from repro.pipeline.monitoring import OnlineMonitor
from repro.sim.platform import Platform
from repro.sim.trace import synthetic_burst

ATOL = 1e-9

# A small region for address-level cases: 8 cells of 256 bytes.
BASE, SIZE, SHIFT, CELLS = 0x1000, 0x800, 8, 8
SMALL_REGION = dict(
    base_address=BASE, region_size=SIZE, shift=SHIFT, num_cells=CELLS
)


def both_count(addresses, weights=None, **kwargs):
    kwargs = kwargs or SMALL_REGION
    return (
        vectorized.count_cells(addresses, weights, **kwargs),
        reference.count_cells(addresses, weights, **kwargs),
    )


class TestCountCells:
    """Integer counting must be bit-identical, not merely close."""

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=0, max_value=300),
        fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_random_bursts_bit_identical(self, seed, n, fraction):
        rng = np.random.default_rng(seed)
        burst = synthetic_burst(
            rng, n, base_address=BASE, region_size=SIZE,
            in_region_fraction=fraction,
        )
        (vec_counts, vec_accepted), (ref_counts, ref_accepted) = both_count(
            burst.addresses, burst.weights
        )
        np.testing.assert_array_equal(vec_counts, ref_counts)
        assert vec_counts.dtype == ref_counts.dtype == np.int64
        assert vec_accepted == ref_accepted

    def test_empty_burst(self):
        (vec_counts, vec_accepted), (ref_counts, ref_accepted) = both_count(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        np.testing.assert_array_equal(vec_counts, ref_counts)
        assert vec_counts.sum() == 0 and vec_accepted == ref_accepted == 0

    def test_all_out_of_region(self):
        addresses = np.array([BASE - 1, BASE + SIZE, 0, BASE + 10 * SIZE])
        (vec_counts, vec_accepted), (ref_counts, ref_accepted) = both_count(
            addresses
        )
        np.testing.assert_array_equal(vec_counts, ref_counts)
        assert vec_counts.sum() == 0 and vec_accepted == ref_accepted == 0

    def test_region_boundary_addresses(self):
        """First/last in-region byte counted, both neighbours dropped."""
        addresses = np.array([BASE - 1, BASE, BASE + SIZE - 1, BASE + SIZE])
        (vec_counts, vec_accepted), (ref_counts, ref_accepted) = both_count(
            addresses
        )
        np.testing.assert_array_equal(vec_counts, ref_counts)
        assert vec_accepted == ref_accepted == 2
        assert vec_counts[0] == 1 and vec_counts[CELLS - 1] == 1

    def test_default_weights(self):
        addresses = np.array([BASE, BASE, BASE + 0x100])
        (vec_counts, vec_accepted), (ref_counts, ref_accepted) = both_count(
            addresses, None
        )
        np.testing.assert_array_equal(vec_counts, ref_counts)
        assert vec_counts[0] == 2 and vec_counts[1] == 1
        assert vec_accepted == ref_accepted == 3

    @pytest.mark.slow
    def test_exhaustive_address_sweep(self):
        """Every address from below base to beyond the region, one cell
        at a time — the strongest form of the off-by-one guarantee."""
        addresses = np.arange(BASE - 0x120, BASE + SIZE + 0x120, dtype=np.int64)
        for weights in (None, np.arange(len(addresses)) % 7):
            (vec_counts, vec_accepted), (ref_counts, ref_accepted) = both_count(
                addresses, weights
            )
            np.testing.assert_array_equal(vec_counts, ref_counts)
            assert vec_accepted == ref_accepted


def _pca_case(rng, n, num_cells=24, rank=4, constant_cells=0):
    mean = rng.random(num_cells) * 1e3
    basis, _ = np.linalg.qr(rng.standard_normal((num_cells, rank)))
    components = basis.T
    matrix = mean + rng.standard_normal((n, num_cells)) * 10.0
    if constant_cells:
        # Degenerate MHM cells: never-executed code regions count 0
        # in every interval, so whole columns are constant.
        matrix[:, :constant_cells] = 7.0
    weights = rng.standard_normal((n, rank)) * 5.0
    return matrix, mean, components, weights


class TestEigenmemoryKernels:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=1, max_value=40),
        constant_cells=st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_project_matches_oracle(self, seed, n, constant_cells):
        rng = np.random.default_rng(seed)
        matrix, mean, components, _ = _pca_case(
            rng, n, constant_cells=constant_cells
        )
        vec = vectorized.project_batch(matrix, mean, components)
        ref = reference.project_batch(matrix, mean, components)
        np.testing.assert_allclose(vec, ref, atol=ATOL, rtol=0)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=25, deadline=None)
    def test_reconstruct_matches_oracle(self, seed, n):
        rng = np.random.default_rng(seed)
        _, mean, components, weights = _pca_case(rng, n)
        vec = vectorized.reconstruct_batch(weights, mean, components)
        ref = reference.reconstruct_batch(weights, mean, components)
        np.testing.assert_allclose(vec, ref, atol=ATOL, rtol=0)

    def test_single_sample_batch(self):
        rng = np.random.default_rng(3)
        matrix, mean, components, weights = _pca_case(rng, 1)
        assert vectorized.project_batch(matrix, mean, components).shape == (1, 4)
        np.testing.assert_allclose(
            vectorized.project_batch(matrix, mean, components),
            reference.project_batch(matrix, mean, components),
            atol=ATOL, rtol=0,
        )
        np.testing.assert_allclose(
            vectorized.reconstruct_batch(weights[:1], mean, components),
            reference.reconstruct_batch(weights[:1], mean, components),
            atol=ATOL, rtol=0,
        )


def _gmm_case(rng, n, dim=5, num_components=3, zero_weight=False):
    means = rng.standard_normal((num_components, dim)) * 3.0
    factors = rng.standard_normal((num_components, dim, dim)) * 0.4
    covariances = factors @ factors.transpose(0, 2, 1) + 0.5 * np.eye(dim)
    cholesky_factors = np.linalg.cholesky(covariances)
    weights = rng.dirichlet(np.ones(num_components))
    if zero_weight:
        weights[0] = 0.0
        weights /= weights.sum()
    data = rng.standard_normal((n, dim)) * 3.0
    return data, weights, means, cholesky_factors


class TestGmmKernels:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=1, max_value=60),
        zero_weight=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_log_density_matches_oracle(self, seed, n, zero_weight):
        rng = np.random.default_rng(seed)
        data, weights, means, chols = _gmm_case(rng, n, zero_weight=zero_weight)
        vec = vectorized.log_density_batch(data, weights, means, chols)
        ref = reference.log_density_batch(data, weights, means, chols)
        np.testing.assert_allclose(vec, ref, atol=ATOL, rtol=0)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=25, deadline=None)
    def test_component_log_densities_match_oracle(self, seed, n):
        rng = np.random.default_rng(seed)
        data, _, means, chols = _gmm_case(rng, n)
        vec = vectorized.component_log_densities(data, means, chols)
        ref = reference.component_log_densities(data, means, chols)
        np.testing.assert_allclose(vec, ref, atol=ATOL, rtol=0)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=1, max_value=60),
        zero_weight=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_responsibilities_match_oracle(self, seed, n, zero_weight):
        rng = np.random.default_rng(seed)
        data, weights, means, chols = _gmm_case(rng, n, zero_weight=zero_weight)
        vec_norm, vec_resp = vectorized.responsibilities_batch(
            data, weights, means, chols
        )
        ref_norm, ref_resp = reference.responsibilities_batch(
            data, weights, means, chols
        )
        np.testing.assert_allclose(vec_norm, ref_norm, atol=ATOL, rtol=0)
        np.testing.assert_allclose(vec_resp, ref_resp, atol=ATOL, rtol=0)

    def test_single_sample_batch(self):
        rng = np.random.default_rng(11)
        data, weights, means, chols = _gmm_case(rng, 1)
        vec = vectorized.log_density_batch(data, weights, means, chols)
        ref = reference.log_density_batch(data, weights, means, chols)
        assert vec.shape == ref.shape == (1,)
        np.testing.assert_allclose(vec, ref, atol=ATOL, rtol=0)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        rows=st.integers(min_value=1, max_value=12),
        cols=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_logsumexp_matches_oracle(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        values = rng.standard_normal((rows, cols)) * 200.0
        # Sprinkle -inf entries (collapsed components).
        values[rng.random((rows, cols)) < 0.2] = -np.inf
        vec = vectorized.logsumexp(values, axis=1)
        ref = reference.logsumexp(values, axis=1)
        np.testing.assert_allclose(vec, ref, atol=ATOL, rtol=0)


class TestEndToEnd:
    """The whole pipeline, not just the kernels in isolation."""

    def test_simulated_mhm_counts_bit_identical(self, quick_artifacts):
        """A platform run produces the exact same heat maps under
        either backend: counting is integer arithmetic throughout."""
        series = {}
        for backend in kernels.BACKENDS:
            with kernels.use_backend(backend):
                platform = Platform(quick_artifacts.config)
                series[backend] = platform.collect_intervals(6).matrix(
                    dtype=np.int64
                )
        np.testing.assert_array_equal(
            series["vectorized"], series["reference"]
        )

    def test_classify_series_verdicts_identical(self, quick_artifacts):
        """Offline classification flags exactly the same intervals."""
        detector = quick_artifacts.detector
        window = quick_artifacts.data.training
        with kernels.use_backend("vectorized"):
            vec_flags = detector.classify_series(window, p_percent=1.0)
        with kernels.use_backend("reference"):
            ref_flags = detector.classify_series(window, p_percent=1.0)
        np.testing.assert_array_equal(vec_flags, ref_flags)

    @pytest.mark.slow
    def test_online_monitor_alarms_identical(self, quick_artifacts):
        """The online monitor raises the same alarms at the same
        intervals whichever backend scores the stream."""
        reports = {}
        for backend in kernels.BACKENDS:
            with kernels.use_backend(backend):
                platform = Platform(quick_artifacts.config)
                monitor = OnlineMonitor(
                    platform, quick_artifacts.detector, p_percent=1.0
                )
                reports[backend] = monitor.monitor(12)
        vec, ref = reports["vectorized"], reports["reference"]
        assert vec.kernels_backend == "vectorized"
        assert ref.kernels_backend == "reference"
        assert vec.flagged == ref.flagged
        assert [a.interval_index for a in vec.alarms] == [
            a.interval_index for a in ref.alarms
        ]
        np.testing.assert_allclose(
            vec.log_densities, ref.log_densities, atol=ATOL, rtol=0
        )

"""Backend + dtype selection: env vars, overrides, scoping."""

import numpy as np
import pytest

from repro import kernels


@pytest.fixture(autouse=True)
def _clean_backend(monkeypatch):
    """Every test starts with no override and no env var, and leaks neither."""
    monkeypatch.delenv(kernels.ENV_VAR, raising=False)
    monkeypatch.setattr(kernels, "_override", None)
    monkeypatch.delenv(kernels.DTYPE_ENV_VAR, raising=False)
    monkeypatch.setattr(kernels, "_dtype_override", None)
    yield


class TestSelection:
    def test_default_is_vectorized(self):
        assert kernels.DEFAULT_BACKEND == "vectorized"
        assert kernels.active_backend() == "vectorized"

    def test_env_var_selects_reference(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "reference")
        assert kernels.active_backend() == "reference"

    def test_env_var_is_normalised(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "  Reference ")
        assert kernels.active_backend() == "reference"

    def test_empty_env_var_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "")
        assert kernels.active_backend() == kernels.DEFAULT_BACKEND

    def test_invalid_env_var_raises(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "simd")
        with pytest.raises(kernels.KernelBackendError, match="simd"):
            kernels.active_backend()

    def test_set_backend_beats_env(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "vectorized")
        kernels.set_backend("reference")
        assert kernels.active_backend() == "reference"
        kernels.set_backend(None)
        assert kernels.active_backend() == "vectorized"

    def test_set_backend_rejects_unknown(self):
        with pytest.raises(kernels.KernelBackendError):
            kernels.set_backend("turbo")

    def test_use_backend_restores_on_exit(self):
        assert kernels.active_backend() == "vectorized"
        with kernels.use_backend("reference"):
            assert kernels.active_backend() == "reference"
            with kernels.use_backend("vectorized"):
                assert kernels.active_backend() == "vectorized"
            assert kernels.active_backend() == "reference"
        assert kernels.active_backend() == "vectorized"

    def test_use_backend_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with kernels.use_backend("reference"):
                raise RuntimeError("boom")
        assert kernels.active_backend() == "vectorized"

    def test_backend_module_resolution(self):
        from repro.kernels import reference, vectorized

        assert kernels.backend_module("reference") is reference
        assert kernels.backend_module("vectorized") is vectorized
        with kernels.use_backend("reference"):
            assert kernels.backend_module() is reference


class TestDtypeSelection:
    """The fused path's compute dtype mirrors the backend plumbing."""

    def test_default_is_float64(self):
        assert kernels.DEFAULT_DTYPE == "float64"
        assert kernels.active_dtype() == "float64"

    def test_env_var_selects_float32(self, monkeypatch):
        monkeypatch.setenv(kernels.DTYPE_ENV_VAR, "float32")
        assert kernels.active_dtype() == "float32"

    def test_env_var_is_normalised(self, monkeypatch):
        monkeypatch.setenv(kernels.DTYPE_ENV_VAR, "  Float32 ")
        assert kernels.active_dtype() == "float32"

    def test_empty_env_var_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(kernels.DTYPE_ENV_VAR, "")
        assert kernels.active_dtype() == kernels.DEFAULT_DTYPE

    def test_invalid_env_var_raises(self, monkeypatch):
        monkeypatch.setenv(kernels.DTYPE_ENV_VAR, "bfloat16")
        with pytest.raises(kernels.KernelBackendError, match="bfloat16"):
            kernels.active_dtype()

    def test_set_dtype_beats_env(self, monkeypatch):
        monkeypatch.setenv(kernels.DTYPE_ENV_VAR, "float64")
        kernels.set_dtype("float32")
        assert kernels.active_dtype() == "float32"
        kernels.set_dtype(None)
        assert kernels.active_dtype() == "float64"

    def test_set_dtype_rejects_unknown(self):
        with pytest.raises(kernels.KernelBackendError):
            kernels.set_dtype("float16")

    def test_use_dtype_restores_on_exit(self):
        assert kernels.active_dtype() == "float64"
        with kernels.use_dtype("float32"):
            assert kernels.active_dtype() == "float32"
            with kernels.use_dtype("float64"):
                assert kernels.active_dtype() == "float64"
            assert kernels.active_dtype() == "float32"
        assert kernels.active_dtype() == "float64"

    def test_use_dtype_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with kernels.use_dtype("float32"):
                raise RuntimeError("boom")
        assert kernels.active_dtype() == "float64"

    def test_fused_call_honours_active_dtype(self):
        """fleet_score_batch resolves the ambient dtype per call."""
        rng = np.random.default_rng(0)
        mean = rng.random(8)
        basis, _ = np.linalg.qr(rng.standard_normal((8, 3)))
        matrix = mean + rng.standard_normal((5, 8))
        means = rng.standard_normal((2, 3))
        chols = np.tile(np.eye(3), (2, 1, 1))
        weights = np.array([0.5, 0.5])
        f64 = kernels.fleet_score_batch(
            matrix, mean, basis.T, weights, means, chols
        )
        with kernels.use_dtype("float32"):
            f32 = kernels.fleet_score_batch(
                matrix, mean, basis.T, weights, means, chols
            )
        assert not np.array_equal(f64.log_densities, f32.log_densities)
        ulp = kernels.float32_ulp_error(f32.log_densities, f64.log_densities)
        assert ulp.max() <= kernels.FLOAT32_ULP_BUDGET


class TestDispatch:
    def test_dispatch_follows_switch(self):
        """The same facade call hits whichever backend is active."""
        values = np.array([[0.0, -1.0]])
        with kernels.use_backend("reference"):
            ref = kernels.logsumexp(values, axis=1)
        with kernels.use_backend("vectorized"):
            vec = kernels.logsumexp(values, axis=1)
        np.testing.assert_allclose(ref, vec, rtol=1e-12)

    def test_safe_log_weights_shared_helper(self):
        out = kernels.safe_log_weights(np.array([0.5, 0.0, 0.5]))
        assert out[1] == -np.inf
        np.testing.assert_allclose(out[[0, 2]], np.log(0.5))

"""Fused fleet-scoring kernel: differential, padding and dtype suite.

Four contracts, each on hypothesis-generated model fixtures:

* **float64 differential** — fused vectorized ≡ the unfused vectorized
  chain bitwise, and ≡ the scalar reference oracle within 1e-9;
* **bitwise pins** — fused float64 reproduces the serving layer's
  historical ``batched_log_densities`` chunk loop and the context
  detector's ``score_series`` / ``drift_series`` residuals exactly
  (the shipped-digest contract);
* **float32 fast path** — error against the float64 oracle bounded by
  :data:`repro.kernels.FLOAT32_ULP_BUDGET` under both padding modes;
* **padding purity** — zero-padded rows never influence a real row's
  score: every row scored inside any batch equals the row scored
  alone, bitwise, under both dtypes.
"""

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.kernels import reference, vectorized
from repro.learn.contexts import ContextDetector
from repro.serve.worker import batched_log_densities

ATOL = 1e-9

# Small fixture dims keep hypothesis fast while exercising every shape
# the serving layer produces (cells >> rank, several mixture
# components, a context bank plus hyperperiod phases).
CELLS, RANK, COMPONENTS = 24, 4, 3
SYSCALL_DIM, CONTEXTS, HYPERPERIOD = 6, 4, 5


def _fixture(seed, n, collapse_component=False, zero_scale=False):
    """One profile's model arrays plus an n-row device batch."""
    rng = np.random.default_rng(seed)
    mean = rng.random(CELLS) * 100.0
    basis, _ = np.linalg.qr(rng.standard_normal((CELLS, RANK)))
    components = basis.T
    matrix = mean + rng.standard_normal((n, CELLS)) * 10.0
    gmm_means = rng.standard_normal((COMPONENTS, RANK)) * 3.0
    factors = rng.standard_normal((COMPONENTS, RANK, RANK)) * 0.4
    covariances = factors @ factors.transpose(0, 2, 1) + 0.5 * np.eye(RANK)
    chols = np.linalg.cholesky(covariances)
    weights = rng.dirichlet(np.ones(COMPONENTS))
    if collapse_component:
        weights = weights.copy()
        weights[0] = 0.0
        weights /= weights.sum()
    centers = rng.random((CONTEXTS, SYSCALL_DIM)) * 30.0
    scales = rng.random(CONTEXTS) * 2.0 + 0.25
    if zero_scale:
        scales = scales.copy()
        scales[0] = 0.0
    phase_means = rng.random((HYPERPERIOD, SYSCALL_DIM)) * 30.0
    syscalls = rng.integers(0, 40, size=(n, SYSCALL_DIM)).astype(np.float64)
    phases = (np.arange(n, dtype=np.int64) + int(seed) % 7) % HYPERPERIOD
    return SimpleNamespace(
        matrix=matrix,
        mean=mean,
        components=components,
        weights=weights,
        gmm_means=gmm_means,
        chols=chols,
        centers=centers,
        scales=scales,
        phase_means=phase_means,
        syscalls=syscalls,
        phases=phases,
    )


def _fused(module, fx, *, pad_to=None, dtype="float64", with_context=True):
    kwargs = {}
    if with_context:
        kwargs = dict(
            syscalls=fx.syscalls,
            centers=fx.centers,
            scales=fx.scales,
            phase_means=fx.phase_means,
            phases=fx.phases,
        )
    return module.fleet_score_batch(
        fx.matrix,
        fx.mean,
        fx.components,
        fx.weights,
        fx.gmm_means,
        fx.chols,
        pad_to=pad_to,
        dtype=dtype,
        **kwargs,
    )


batch_cases = given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=1, max_value=40),
    pad_to=st.sampled_from([None, 1, 7, 32]),
)


class TestFloat64Differential:
    @batch_cases
    @settings(max_examples=40, deadline=None)
    def test_fused_matches_unfused_chain_bitwise(self, seed, n, pad_to):
        """pad_to=None ≡ project→log_density at the batch's own shape."""
        fx = _fixture(seed, n)
        densities, _, _ = _fused(
            vectorized, fx, pad_to=pad_to, with_context=False
        )
        if pad_to is None:
            reduced = vectorized.project_batch(fx.matrix, fx.mean, fx.components)
            expected = vectorized.log_density_batch(
                reduced, fx.weights, fx.gmm_means, fx.chols
            )
            np.testing.assert_array_equal(densities, expected)
        else:
            detector = SimpleNamespace(
                eigenmemory=SimpleNamespace(
                    mean_=fx.mean, components_=fx.components
                ),
                gmm=SimpleNamespace(
                    parameters=SimpleNamespace(
                        weights=fx.weights,
                        means=fx.gmm_means,
                        cholesky_factors=fx.chols,
                    )
                ),
            )
            expected = batched_log_densities(detector, fx.matrix, pad_to=pad_to)
            np.testing.assert_array_equal(densities, expected)

    @batch_cases
    @settings(max_examples=40, deadline=None)
    def test_fused_matches_reference_oracle(self, seed, n, pad_to):
        fx = _fixture(seed, n)
        vec = _fused(vectorized, fx, pad_to=pad_to)
        ref = _fused(reference, fx, pad_to=pad_to)
        for got, want in zip(vec, ref):
            np.testing.assert_allclose(got, want, atol=ATOL, rtol=0)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_collapsed_gmm_component(self, seed):
        """A zero-weight component scores as impossible, silently."""
        fx = _fixture(seed, 12, collapse_component=True)
        vec = _fused(vectorized, fx, pad_to=7)
        ref = _fused(reference, fx, pad_to=7)
        assert np.isfinite(vec[0]).all()
        np.testing.assert_allclose(vec[0], ref[0], atol=ATOL, rtol=0)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_zero_scale_context(self, seed):
        """Zero-scale contexts score inf for positive distances."""
        fx = _fixture(seed, 12, zero_scale=True)
        vec = _fused(vectorized, fx, pad_to=None)
        ref = _fused(reference, fx, pad_to=None)
        finite = np.isfinite(ref[1])
        np.testing.assert_array_equal(np.isfinite(vec[1]), finite)
        np.testing.assert_allclose(
            vec[1][finite], ref[1][finite], atol=ATOL, rtol=0
        )


class TestServeLayerPins:
    """The fused float64 path reproduces the pre-fusion serving ops
    bitwise — the serial ≡ sharded digest contract depends on it."""

    def test_context_scores_and_residuals_pin_detector(self):
        fx = _fixture(7, 20)
        detector = ContextDetector(
            num_contexts=CONTEXTS, hyperperiod=HYPERPERIOD
        )
        detector.centers_ = fx.centers
        detector.scales_ = fx.scales
        # phase_means_ is phase_sums_ / phase_counts_; pick counts of 1
        # so the fixture's phase means round-trip exactly.
        detector.phase_sums_ = fx.phase_means.copy()
        detector.phase_counts_ = np.ones(HYPERPERIOD, dtype=np.int64)
        scores = _fused(vectorized, fx, pad_to=None)
        np.testing.assert_array_equal(
            scores[1], detector.score_series(fx.syscalls)
        )
        start = int(fx.phases[0])
        expected_drift = detector.drift_series(fx.syscalls, start_index=start)
        cumulative = np.cumsum(scores[2], axis=0)
        np.testing.assert_array_equal(
            np.abs(cumulative).max(axis=1), expected_drift
        )

    def test_empty_batch(self):
        fx = _fixture(3, 1)
        empty = SimpleNamespace(**{**vars(fx)})
        empty.matrix = np.empty((0, CELLS))
        empty.syscalls = np.empty((0, SYSCALL_DIM))
        empty.phases = np.empty(0, dtype=np.int64)
        for module in (vectorized, reference):
            densities, ctx, residuals = _fused(module, empty, pad_to=8)
            assert densities.shape == (0,)
            assert ctx.shape == (0,)
            assert residuals.shape[0] == 0


class TestFloat32FastPath:
    @batch_cases
    @settings(max_examples=40, deadline=None)
    def test_within_ulp_budget(self, seed, n, pad_to):
        fx = _fixture(seed, n)
        fast = _fused(vectorized, fx, pad_to=pad_to, dtype="float32")
        oracle = _fused(reference, fx, pad_to=pad_to, dtype="float64")
        for got, want in zip(fast, oracle):
            ulp = kernels.float32_ulp_error(got, want)
            assert ulp.size == 0 or ulp.max() <= kernels.FLOAT32_ULP_BUDGET

    def test_results_are_float64_arrays(self):
        fx = _fixture(11, 9)
        scores = kernels.fleet_score_batch(
            fx.matrix, fx.mean, fx.components, fx.weights, fx.gmm_means,
            fx.chols, pad_to=4, dtype="float32", syscalls=fx.syscalls,
            centers=fx.centers, scales=fx.scales,
            phase_means=fx.phase_means, phases=fx.phases,
        )
        assert scores.log_densities.dtype == np.float64
        assert scores.context_scores.dtype == np.float64
        assert scores.context_residuals.dtype == np.float64

    def test_reference_backend_ignores_float32(self):
        """The oracle has no fast path: dtype=float32 is a no-op there."""
        fx = _fixture(5, 10)
        f64 = _fused(reference, fx, pad_to=4, dtype="float64")
        f32 = _fused(reference, fx, pad_to=4, dtype="float32")
        for a, b in zip(f64, f32):
            np.testing.assert_array_equal(a, b)


class TestPaddingPurity:
    """Zero-padded rows must never influence a real device's score."""

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=1, max_value=17),
        pad_to=st.sampled_from([4, 8, 32]),
        dtype=st.sampled_from(["float64", "float32"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_row_scores_independent_of_batchmates(self, seed, n, pad_to, dtype):
        fx = _fixture(seed, n)
        batch = _fused(vectorized, fx, pad_to=pad_to, dtype=dtype)
        for row in range(n):
            alone = SimpleNamespace(**{**vars(fx)})
            alone.matrix = fx.matrix[row : row + 1]
            alone.syscalls = fx.syscalls[row : row + 1]
            alone.phases = fx.phases[row : row + 1]
            solo = _fused(vectorized, alone, pad_to=pad_to, dtype=dtype)
            np.testing.assert_array_equal(batch[0][row : row + 1], solo[0])
            np.testing.assert_array_equal(batch[1][row : row + 1], solo[1])
            np.testing.assert_array_equal(
                batch[2][row : row + 1], solo[2]
            )

    def test_mostly_padding_chunk(self):
        """A 1-row batch padded to 32 equals the same row at pad_to=1."""
        fx = _fixture(13, 1)
        wide = _fused(vectorized, fx, pad_to=32)
        tight = _fused(vectorized, fx, pad_to=1)
        for a, b in zip(wide, tight):
            np.testing.assert_array_equal(a, b)


class TestFacadeValidation:
    def test_rejects_bad_pad_to(self):
        fx = _fixture(1, 2)
        with pytest.raises(ValueError, match="pad_to"):
            _fused(kernels, fx, pad_to=0, with_context=False)

    def test_rejects_centers_without_syscalls(self):
        fx = _fixture(1, 2)
        with pytest.raises(ValueError, match="syscall"):
            kernels.fleet_score_batch(
                fx.matrix, fx.mean, fx.components, fx.weights,
                fx.gmm_means, fx.chols, centers=fx.centers,
            )

    def test_rejects_misaligned_phases(self):
        fx = _fixture(1, 4)
        with pytest.raises(ValueError, match="phases"):
            kernels.fleet_score_batch(
                fx.matrix, fx.mean, fx.components, fx.weights,
                fx.gmm_means, fx.chols, syscalls=fx.syscalls,
                centers=fx.centers, scales=fx.scales,
                phase_means=fx.phase_means, phases=fx.phases[:-1],
            )

    def test_rejects_unknown_dtype(self):
        fx = _fixture(1, 2)
        with pytest.raises(kernels.KernelBackendError, match="float16"):
            _fused(kernels, fx, dtype="float16", with_context=False)


class TestFleetScorer:
    def test_score_computes_phases_from_interval_indices(self):
        fx = _fixture(9, 15)
        scorer = kernels.FleetScorer(
            pca_mean=fx.mean,
            pca_components=fx.components,
            gmm_weights=fx.weights,
            gmm_means=fx.gmm_means,
            gmm_cholesky_factors=fx.chols,
            context_centers=fx.centers,
            context_scales=fx.scales,
            context_phase_means=fx.phase_means,
            context_hyperperiod=HYPERPERIOD,
        )
        indices = np.arange(15) + 23
        got = scorer.score(
            fx.matrix, syscalls=fx.syscalls, interval_indices=indices
        )
        fx.phases = indices % HYPERPERIOD
        want = _fused(vectorized, fx, pad_to=None)
        np.testing.assert_array_equal(got.log_densities, want[0])
        np.testing.assert_array_equal(got.context_scores, want[1])
        np.testing.assert_array_equal(got.context_residuals, want[2])

    def test_syscalls_without_context_model_raise(self):
        fx = _fixture(2, 3)
        scorer = kernels.FleetScorer(
            pca_mean=fx.mean,
            pca_components=fx.components,
            gmm_weights=fx.weights,
            gmm_means=fx.gmm_means,
            gmm_cholesky_factors=fx.chols,
        )
        with pytest.raises(ValueError, match="context"):
            scorer.score(fx.matrix, syscalls=fx.syscalls)

    def test_mhm_only_scoring(self):
        fx = _fixture(4, 8)
        scorer = kernels.FleetScorer(
            pca_mean=fx.mean,
            pca_components=fx.components,
            gmm_weights=fx.weights,
            gmm_means=fx.gmm_means,
            gmm_cholesky_factors=fx.chols,
        )
        scores = scorer.score(fx.matrix, pad_to=4)
        assert scores.context_scores is None
        assert scores.context_residuals is None
        want = _fused(vectorized, fx, pad_to=4, with_context=False)
        np.testing.assert_array_equal(scores.log_densities, want[0])

"""Kernel-level invariants that hold for *both* backends.

Where the differential suite asks "do the backends agree?", this one
asks "is what they agree on actually right?" — region boundary
arithmetic, partial last cells, degenerate PCA inputs, probability
normalisation and log-space numerical stability.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.learn.pca import Eigenmemory

pytestmark = pytest.mark.parametrize("backend", kernels.BACKENDS)


@pytest.fixture(autouse=True)
def _select_backend(backend):
    with kernels.use_backend(backend):
        yield


class TestCountingBoundaries:
    """Section 3.1 datapath: accept iff ``0 <= addr - base < S``."""

    BASE, SIZE, SHIFT = 0x1000, 0x800, 8  # 8 full cells of 256 bytes

    def count(self, addresses, size=None):
        size = self.SIZE if size is None else size
        num_cells = -(-size // (1 << self.SHIFT))  # ceil division
        return kernels.count_cells(
            np.asarray(addresses, dtype=np.int64),
            base_address=self.BASE,
            region_size=size,
            shift=self.SHIFT,
            num_cells=num_cells,
        )

    def test_first_and_last_byte_accepted(self, backend):
        counts, accepted = self.count([self.BASE, self.BASE + self.SIZE - 1])
        assert accepted == 2
        assert counts[0] == 1 and counts[-1] == 1

    def test_neighbours_rejected(self, backend):
        counts, accepted = self.count([self.BASE - 1, self.BASE + self.SIZE])
        assert accepted == 0 and counts.sum() == 0

    def test_partial_last_cell(self, backend):
        """S not a multiple of the granularity: the final, short cell
        still owns every address up to ``base + S - 1``."""
        size = 0x7F0  # 2,032 bytes -> 7 full cells + one 240-byte cell
        counts, accepted = self.count(
            [self.BASE + size - 1, self.BASE + size], size=size
        )
        assert accepted == 1
        assert counts[-1] == 1 and len(counts) == 8

    def test_cell_edges(self, backend):
        """Last byte of cell k and first byte of cell k+1 split cleanly."""
        counts, accepted = self.count([self.BASE + 0xFF, self.BASE + 0x100])
        assert accepted == 2
        assert counts[0] == 1 and counts[1] == 1


class TestDegeneratePca:
    def test_zero_variance_cells_stay_finite(self, backend):
        """Constant (never-executed) cells must not poison the
        transform: their centered values are exactly zero."""
        rng = np.random.default_rng(8)
        matrix = rng.random((12, 10)) * 100.0
        matrix[:, 3] = 42.0
        matrix[:, 7] = 0.0
        model = Eigenmemory(num_components=3).fit(matrix)
        reduced = model.transform(matrix)
        restored = model.inverse_transform(reduced)
        assert np.isfinite(reduced).all() and np.isfinite(restored).all()
        # The constant cells reconstruct exactly from the mean alone.
        np.testing.assert_allclose(restored[:, 3], 42.0, atol=1e-9)
        np.testing.assert_allclose(restored[:, 7], 0.0, atol=1e-9)

    def test_round_trip_in_span(self, backend):
        """Transform then inverse-transform is exact for data already in
        the eigenmemory span (full rank kept)."""
        rng = np.random.default_rng(9)
        matrix = rng.random((6, 5))
        model = Eigenmemory(num_components=5).fit(matrix)
        restored = model.inverse_transform(model.transform(matrix))
        np.testing.assert_allclose(restored, matrix, atol=1e-8)


def _mixture(rng, num_components=4, dim=3, zero_weight=False):
    means = rng.standard_normal((num_components, dim)) * 2.0
    factors = rng.standard_normal((num_components, dim, dim)) * 0.3
    covariances = factors @ factors.transpose(0, 2, 1) + 0.4 * np.eye(dim)
    cholesky_factors = np.linalg.cholesky(covariances)
    weights = rng.dirichlet(np.ones(num_components))
    if zero_weight:
        weights[-1] = 0.0
        weights /= weights.sum()
    return weights, means, cholesky_factors


class TestResponsibilityNormalisation:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=1, max_value=30),
        zero_weight=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_rows_sum_to_one(self, backend, seed, n, zero_weight):
        rng = np.random.default_rng(seed)
        weights, means, chols = _mixture(rng, zero_weight=zero_weight)
        data = rng.standard_normal((n, means.shape[1])) * 2.0
        log_norm, resp = kernels.responsibilities_batch(
            data, weights, means, chols
        )
        assert log_norm.shape == (n,) and resp.shape == (n, len(weights))
        assert np.isfinite(log_norm).all()
        np.testing.assert_allclose(resp.sum(axis=1), 1.0, atol=1e-9)
        assert (resp >= 0).all()

    def test_dead_component_gets_zero_responsibility(self, backend):
        rng = np.random.default_rng(21)
        weights, means, chols = _mixture(rng, zero_weight=True)
        data = rng.standard_normal((10, means.shape[1]))
        _, resp = kernels.responsibilities_batch(data, weights, means, chols)
        np.testing.assert_array_equal(resp[:, -1], 0.0)


class TestLogSpaceStability:
    def test_widely_separated_values(self, backend):
        """exp() of the raw values would overflow/underflow; the
        log-sum-exp result is dominated by the peak."""
        values = np.array([[1000.0, -1000.0], [-2000.0, -2005.0]])
        out = kernels.logsumexp(values, axis=1)
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out[0], 1000.0, atol=1e-9)
        np.testing.assert_allclose(
            out[1], -2000.0 + np.log1p(np.exp(-5.0)), atol=1e-9
        )

    def test_all_minus_inf_row(self, backend):
        """A sample impossible under every component scores -inf — with
        no divide-by-zero warning (test-fast promotes those to errors)."""
        values = np.array([[-np.inf, -np.inf], [0.0, -np.inf]])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = kernels.logsumexp(values, axis=1)
        assert out[0] == -np.inf
        np.testing.assert_allclose(out[1], 0.0, atol=1e-9)

    def test_single_column(self, backend):
        values = np.array([[3.5], [-1.25]])
        np.testing.assert_allclose(
            kernels.logsumexp(values, axis=1), [3.5, -1.25], atol=1e-9
        )

    def test_safe_log_weights_silent_on_zero(self, backend):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = kernels.safe_log_weights(np.array([0.0, 0.25, 0.75]))
        assert out[0] == -np.inf
        np.testing.assert_allclose(out[1:], np.log([0.25, 0.75]))

    def test_zero_weight_mixture_scores_without_warnings(self, backend):
        rng = np.random.default_rng(33)
        weights, means, chols = _mixture(rng, zero_weight=True)
        data = rng.standard_normal((8, means.shape[1]))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            densities = kernels.log_density_batch(data, weights, means, chols)
        assert np.isfinite(densities).all()

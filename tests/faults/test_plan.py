"""Unit and property tests of the fault-plan machinery itself.

The fault harness underwrites the runner's resilience guarantees, so
its own determinism contract — decisions pure in (seed, site, token) —
is tested here independently of the pipeline.
"""

from __future__ import annotations

import json
import pickle
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.faults import FaultError, FaultPlan, FaultSpec, uniform_hash


class TestFaultSpecValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultSpec(mode="explode")

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec(mode="raise", probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(mode="raise", probability=-0.1)

    def test_unknown_site_rejected_at_plan_construction(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan(sites={"cache.reed": FaultSpec(mode="raise")})


class TestDecisionDeterminism:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        token=st.text(min_size=0, max_size=30),
    )
    @settings(max_examples=200, deadline=None)
    def test_uniform_hash_is_pure_and_in_range(self, seed, token):
        u = uniform_hash(seed, "cache.read", token)
        assert 0.0 <= u < 1.0
        assert u == uniform_hash(seed, "cache.read", token)

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        probability=st.floats(min_value=0.0, max_value=1.0),
        tokens=st.lists(st.text(max_size=12), max_size=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_two_plan_instances_agree_on_every_decision(
        self, seed, probability, tokens
    ):
        """The serial≡parallel foundation: independently constructed
        plans (as in separate worker processes) decide identically."""
        make = lambda: FaultPlan(
            sites={"runner.job": FaultSpec(mode="delay", probability=probability)},
            seed=seed,
        )
        one, two = make(), make()
        for token in tokens:
            assert one.would_fire("runner.job", token) == two.would_fire(
                "runner.job", token
            )

    def test_different_seeds_give_different_decisions(self):
        tokens = [f"job-{i}@0" for i in range(200)]
        fires = lambda seed: {
            t
            for t in tokens
            if FaultPlan(
                sites={"runner.job": FaultSpec(mode="raise", probability=0.5)},
                seed=seed,
            ).would_fire("runner.job", t)
        }
        assert fires(1) != fires(2)

    def test_probability_zero_and_one(self):
        plan = FaultPlan(
            sites={
                "cache.read": FaultSpec(mode="raise", probability=0.0),
                "cache.write": FaultSpec(mode="corrupt", probability=1.0),
            }
        )
        assert all(not plan.would_fire("cache.read", str(i)) for i in range(50))
        assert all(plan.would_fire("cache.write", str(i)) for i in range(50))

    def test_probability_roughly_calibrated(self):
        plan = FaultPlan(
            sites={"runner.job": FaultSpec(mode="raise", probability=0.2)}, seed=9
        )
        hits = sum(plan.would_fire("runner.job", str(i)) for i in range(2000))
        assert 0.15 < hits / 2000 < 0.25

    def test_match_filters_tokens(self):
        plan = FaultPlan(
            sites={"runner.job": FaultSpec(mode="raise", match="shellcode")}
        )
        assert plan.would_fire("runner.job", "shellcode-a@0")
        assert not plan.would_fire("runner.job", "rootkit-a@0")

    def test_max_triggers_caps_per_process_fires(self):
        plan = FaultPlan(
            sites={"cache.read": FaultSpec(mode="corrupt", max_triggers=2)}
        )
        fired = [plan.decide("cache.read", str(i)) is not None for i in range(5)]
        assert fired == [True, True, False, False, False]
        assert plan.fires == {"cache.read": 2}


class TestInstallAndCheck:
    def test_no_plan_is_a_noop(self):
        assert faults.active() is None
        assert faults.check("cache.read", token="x") is None

    def test_injected_scopes_and_restores(self):
        plan = FaultPlan(sites={"cache.read": FaultSpec(mode="corrupt")})
        with faults.injected(plan):
            assert faults.active() is plan
            assert faults.check("cache.read", token="x") is not None
        assert faults.active() is None

    def test_injected_none_passthrough(self):
        with faults.injected(None):
            assert faults.active() is None

    def test_raise_mode_raises_with_site(self):
        plan = FaultPlan(sites={"stages.fit": FaultSpec(mode="raise")})
        with faults.injected(plan):
            with pytest.raises(FaultError) as excinfo:
                faults.check("stages.fit", token="t")
        assert excinfo.value.site == "stages.fit"

    def test_delay_mode_sleeps(self):
        plan = FaultPlan(
            sites={"runner.job": FaultSpec(mode="delay", delay_seconds=0.05)}
        )
        with faults.injected(plan):
            started = time.monotonic()
            spec = faults.check("runner.job", token="t")
            elapsed = time.monotonic() - started
        assert spec is not None and elapsed >= 0.04

    def test_fired_faults_count_in_metrics(self):
        from repro import obs

        plan = FaultPlan(sites={"cache.read": FaultSpec(mode="corrupt")})
        with obs.observed() as (registry, _):
            with faults.injected(plan):
                faults.check("cache.read", token="a")
                faults.check("cache.read", token="b")
            snapshot = registry.snapshot()
        assert snapshot["faults.injected.cache.read"]["value"] == 2


class TestMangle:
    @given(data=st.binary(min_size=1, max_size=200), token=st.text(max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_corrupt_changes_exactly_one_bit_deterministically(self, data, token):
        spec = FaultSpec(mode="corrupt")
        one = faults.mangle(spec, data, "cache.read", token)
        two = faults.mangle(spec, data, "cache.read", token)
        assert one == two
        assert len(one) == len(data)
        diffs = [i for i, (a, b) in enumerate(zip(data, one)) if a != b]
        assert len(diffs) == 1
        assert (data[diffs[0]] ^ one[diffs[0]]) == 0x01

    @given(data=st.binary(min_size=2, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_truncate_halves(self, data):
        spec = FaultSpec(mode="truncate")
        assert faults.mangle(spec, data, "cache.write") == data[: len(data) // 2]

    def test_empty_payload_passthrough(self):
        assert faults.mangle(FaultSpec(mode="corrupt"), b"", "cache.read") == b""


class TestSerialisation:
    def test_json_round_trip(self):
        plan = FaultPlan(
            sites={
                "cache.read": FaultSpec(mode="corrupt", probability=0.25),
                "runner.job": FaultSpec(
                    mode="delay", delay_seconds=0.5, match="@0", max_triggers=3
                ),
            },
            seed=42,
        )
        clone = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert clone.seed == plan.seed
        assert set(clone.sites) == set(plan.sites)
        for token in ("a@0", "b@0", "c@1"):
            for site in plan.sites:
                assert clone.would_fire(site, token) == plan.would_fire(site, token)

    def test_pickle_resets_per_process_fires(self):
        """Worker processes count their own triggers: the fires book
        never travels with the plan."""
        plan = FaultPlan(sites={"cache.read": FaultSpec(mode="corrupt")})
        plan.decide("cache.read", "x")
        clone = pickle.loads(pickle.dumps(plan))
        assert plan.fires == {"cache.read": 1}
        assert clone.fires == {}
        assert clone.sites == plan.sites

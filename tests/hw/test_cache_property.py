"""Property-based tests for the cache model.

The LRU set-associative cache is cross-checked against an independent
brute-force reference on random access sequences.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.cache import CacheConfig, SetAssociativeCache


class ReferenceLru:
    """Dead-simple reference: per-set list of (line, last_used)."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.sets: dict[int, list[int]] = {}
        self.clock = 0
        self.last_used: dict[tuple[int, int], int] = {}

    def access(self, address: int) -> bool:
        line = address >> self.config.line_shift
        set_index = line % self.config.num_sets
        resident = self.sets.setdefault(set_index, [])
        self.clock += 1
        if line in resident:
            self.last_used[(set_index, line)] = self.clock
            return True
        if len(resident) == self.config.ways:
            victim = min(resident, key=lambda l: self.last_used[(set_index, l)])
            resident.remove(victim)
        resident.append(line)
        self.last_used[(set_index, line)] = self.clock
        return False


class TestCacheMatchesReference:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        span=st.sampled_from([512, 2048, 16384]),
    )
    @settings(max_examples=40, deadline=None)
    def test_hit_miss_sequence_identical(self, seed, span):
        config = CacheConfig(size_bytes=1024, ways=2)
        model = SetAssociativeCache(config)
        reference = ReferenceLru(config)
        rng = np.random.default_rng(seed)
        addresses = rng.integers(0, span, size=300)
        for address in addresses:
            assert model.access(int(address)) == reference.access(int(address))

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_counters_consistent(self, seed):
        config = CacheConfig(size_bytes=2048, ways=4)
        model = SetAssociativeCache(config)
        rng = np.random.default_rng(seed)
        n = 200
        for address in rng.integers(0, 8192, size=n):
            model.access(int(address))
        assert model.hits + model.misses == n

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_working_set_within_capacity_never_misses_twice(self, seed):
        """Once a small working set is resident, it stays resident."""
        config = CacheConfig(size_bytes=4096, ways=4, line_bytes=32)
        model = SetAssociativeCache(config)
        rng = np.random.default_rng(seed)
        # 8 lines, all mapping to distinct sets (stride = line size).
        lines = (rng.integers(0, 32) * 32 + np.arange(8) * 32 * config.num_sets // 8).tolist()
        working_set = [int(a) for a in lines][:4]
        for address in working_set:
            model.access(address)
        for _ in range(5):
            for address in working_set:
                assert model.access(address)

"""Tests for the secure core and the analysis-time model."""

import numpy as np
import pytest

from repro.core.mhm import MemoryHeatMap
from repro.core.spec import HeatMapSpec
from repro.hw.securecore import AnalysisTimingModel, SecureCore


class TestTimingModel:
    """The model is calibrated to reproduce Section 5.4 exactly."""

    def test_paper_base_configuration(self):
        model = AnalysisTimingModel()
        assert model.analysis_time_us(1472, 9, 5) == pytest.approx(358, abs=1.0)

    def test_paper_coarse_granularity(self):
        # delta = 8 KB -> L = 368 -> 100 us.
        model = AnalysisTimingModel()
        assert model.analysis_time_us(368, 9, 5) == pytest.approx(100, abs=1.0)

    def test_paper_fewer_eigenmemories(self):
        # L' = 5 -> 216 us.
        model = AnalysisTimingModel()
        assert model.analysis_time_us(1472, 5, 5) == pytest.approx(216, abs=1.0)

    def test_monotone_in_every_dimension(self):
        model = AnalysisTimingModel()
        base = model.analysis_time_us(1472, 9, 5)
        assert model.analysis_time_us(2000, 9, 5) > base
        assert model.analysis_time_us(1472, 12, 5) > base
        assert model.analysis_time_us(1472, 9, 8) > base


class TestSecureCore:
    @pytest.fixture()
    def spec(self):
        return HeatMapSpec(0x1000, 0x800, 0x100)

    def _map(self, spec, index=0, count=1):
        heat_map = MemoryHeatMap(spec, interval_index=index)
        heat_map.record(spec.base_address, count=count)
        return heat_map

    def test_receive_archives(self, spec):
        core = SecureCore(spec)
        core.receive(self._map(spec, 0))
        core.receive(self._map(spec, 1))
        assert core.intervals_received == 2
        assert len(core.series()) == 2
        assert len(core.series(start=1)) == 1

    def test_spec_mismatch_rejected(self, spec):
        core = SecureCore(spec)
        other = HeatMapSpec(0x9000, 0x800, 0x100)
        with pytest.raises(ValueError, match="mismatched spec"):
            core.receive(MemoryHeatMap(other))

    def test_online_scoring(self, spec):
        core = SecureCore(spec)
        core.attach_detector(
            scorer=lambda m: (float(-m.total_accesses), m.total_accesses > 5),
            num_components=9,
            num_gaussians=5,
        )
        core.receive(self._map(spec, 0, count=1))
        core.receive(self._map(spec, 1, count=10))
        assert len(core.online_results) == 2
        assert not core.online_results[0].is_anomalous
        assert core.online_results[1].is_anomalous
        assert core.anomalous_intervals() == [1]
        # Timing model applied with the attached detector's dimensions.
        assert core.online_results[0].analysis_time_us > 0

    def test_detach_detector(self, spec):
        core = SecureCore(spec)
        core.attach_detector(lambda m: (0.0, False), 9, 5)
        core.detach_detector()
        core.receive(self._map(spec))
        assert core.online_results == []

"""Tests for the Memometer hardware model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.memometer import (
    COUNTER_MAX,
    MAX_CELLS,
    ControlRegisters,
    Memometer,
    MemometerConfigError,
)
from repro.sim.trace import AccessBurst


def make_registers(base=0x1000, size=0x800, granularity=0x100, interval=10_000_000):
    return ControlRegisters(
        base_address=base,
        region_size=size,
        granularity=granularity,
        interval_ns=interval,
    )


def make_burst(addresses, weights=None, time_ns=0):
    addresses = np.asarray(addresses, dtype=np.int64)
    if weights is None:
        weights = np.ones_like(addresses)
    return AccessBurst(
        time_ns=time_ns,
        addresses=addresses,
        weights=np.asarray(weights, dtype=np.int64),
    )


class TestControlRegisters:
    def test_paper_configuration_fits(self):
        registers = ControlRegisters(
            base_address=0xC0008000,
            region_size=3_013_284,
            granularity=2048,
            interval_ns=10_000_000,
        )
        assert registers.spec.num_cells == 1472
        assert registers.spec.num_cells <= MAX_CELLS

    def test_too_many_cells_rejected(self):
        # The paper's region at 1 KB would need 2,943 cells > 2,048.
        with pytest.raises(MemometerConfigError, match="exceed"):
            ControlRegisters(
                base_address=0xC0008000,
                region_size=3_013_284,
                granularity=1024,
                interval_ns=10_000_000,
            )

    def test_max_cells_is_8kb_of_counters(self):
        assert MAX_CELLS == 2048  # 8 KB / 4 B

    def test_bad_interval_rejected(self):
        with pytest.raises(MemometerConfigError, match="interval"):
            make_registers(interval=0)

    def test_bad_granularity_propagates(self):
        with pytest.raises(ValueError):
            make_registers(granularity=1000)


class TestScalarDatapath:
    def test_in_region_increment(self):
        memometer = Memometer(make_registers())
        assert memometer.observe(0x1000)
        assert memometer.active_counts()[0] == 1

    def test_out_of_region_filtered(self):
        memometer = Memometer(make_registers())
        assert not memometer.observe(0x0FFF)
        assert not memometer.observe(0x1800)
        assert memometer.active_counts().sum() == 0
        assert memometer.accepted_accesses == 0
        assert memometer.snooped_accesses == 2

    def test_shift_indexing(self):
        memometer = Memometer(make_registers())
        memometer.observe(0x1000 + 0x100)  # cell 1
        memometer.observe(0x1000 + 0x2FF)  # cell 2
        counts = memometer.active_counts()
        assert counts[1] == 1
        assert counts[2] == 1

    def test_saturation_at_counter_max(self):
        memometer = Memometer(make_registers())
        memometer.observe(0x1000, weight=COUNTER_MAX)
        memometer.observe(0x1000, weight=5)
        assert memometer.active_counts()[0] == COUNTER_MAX


class TestVectorDatapath:
    def test_burst_filtering_and_counting(self):
        memometer = Memometer(make_registers())
        burst = make_burst([0x1000, 0x1100, 0x0F00, 0x17FF], [1, 2, 100, 3])
        memometer.observe_burst(burst)
        counts = memometer.active_counts()
        assert counts[0] == 1
        assert counts[1] == 2
        assert counts[7] == 3
        assert memometer.accepted_accesses == 6
        assert memometer.snooped_accesses == 106

    def test_empty_burst(self):
        memometer = Memometer(make_registers())
        memometer.observe_burst(make_burst([]))
        assert memometer.active_counts().sum() == 0

    def test_burst_saturation(self):
        memometer = Memometer(make_registers())
        memometer.observe_burst(make_burst([0x1000], [COUNTER_MAX]))
        memometer.observe_burst(make_burst([0x1000], [COUNTER_MAX]))
        assert memometer.active_counts()[0] == COUNTER_MAX

    @given(
        offsets=st.lists(
            st.tuples(
                st.integers(min_value=-0x400, max_value=0xC00),
                st.integers(min_value=0, max_value=50),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_vector_path_matches_scalar_path(self, offsets):
        """The fast path must be bit-identical to the hardware formula."""
        scalar = Memometer(make_registers())
        vector = Memometer(make_registers())
        addresses = np.array([0x1000 + off for off, _ in offsets], dtype=np.int64)
        weights = np.array([w for _, w in offsets], dtype=np.int64)
        if len(offsets):
            vector.observe_burst(make_burst(addresses, weights))
        for address, weight in zip(addresses, weights):
            scalar.observe(int(address), weight=int(weight))
        np.testing.assert_array_equal(scalar.active_counts(), vector.active_counts())
        assert scalar.accepted_accesses == vector.accepted_accesses


class TestRegionBoundaries:
    """Regression guard on the Section 3.1 filter arithmetic.

    Audited for an off-by-one at the region's far edge: accept iff
    ``0 <= addr - base < S``, so ``base + S - 1`` is the last counted
    byte and ``base + S`` the first dropped one — including when S is
    not a multiple of the granularity and the last cell is short.
    """

    def test_last_byte_lands_in_last_cell(self):
        memometer = Memometer(make_registers())
        assert memometer.observe(0x1000 + 0x800 - 1)
        assert memometer.active_counts()[7] == 1

    def test_first_byte_past_region_dropped(self):
        memometer = Memometer(make_registers())
        assert not memometer.observe(0x1000 + 0x800)
        assert memometer.active_counts().sum() == 0

    def test_partial_last_cell(self):
        # 0x7F0 bytes at 0x100 granularity: 7 full cells + a 240-byte
        # eighth cell.  Its last byte must index cell 7, not fall off
        # the counter array or get filtered.
        registers = make_registers(size=0x7F0)
        assert registers.spec.num_cells == 8
        memometer = Memometer(registers)
        assert memometer.observe(0x1000 + 0x7F0 - 1)
        assert not memometer.observe(0x1000 + 0x7F0)
        counts = memometer.active_counts()
        assert counts[7] == 1 and counts.sum() == 1

    def test_partial_last_cell_vector_path(self):
        registers = make_registers(size=0x7F0)
        memometer = Memometer(registers)
        memometer.observe_burst(
            make_burst([0x1000 + 0x7EF, 0x1000 + 0x7F0, 0x1000 + 0x7FF])
        )
        counts = memometer.active_counts()
        assert counts[7] == 1 and counts.sum() == 1
        assert memometer.accepted_accesses == 1


class TestDoubleBuffering:
    def test_boundary_returns_completed_map(self):
        memometer = Memometer(make_registers())
        memometer.observe(0x1000)
        heat_map = memometer.interval_boundary(time_ns=10_000_000)
        assert heat_map.counts[0] == 1
        assert heat_map.interval_index == 0

    def test_active_buffer_alternates(self):
        memometer = Memometer(make_registers())
        assert memometer.active_buffer_index == 0
        memometer.interval_boundary(10_000_000)
        assert memometer.active_buffer_index == 1
        memometer.interval_boundary(20_000_000)
        assert memometer.active_buffer_index == 0

    def test_counts_do_not_leak_across_intervals(self):
        memometer = Memometer(make_registers())
        memometer.observe(0x1000, weight=7)
        first = memometer.interval_boundary(10_000_000)
        memometer.observe(0x1100, weight=3)
        second = memometer.interval_boundary(20_000_000)
        assert first.counts[0] == 7 and first.counts[1] == 0
        assert second.counts[0] == 0 and second.counts[1] == 3
        # Third interval reuses buffer 0, which must have been reset.
        third = memometer.interval_boundary(30_000_000)
        assert third.total_accesses == 0

    def test_monitoring_continues_during_analysis(self):
        """Accesses right after the swap land in the new active buffer."""
        memometer = Memometer(make_registers())
        completed = memometer.interval_boundary(10_000_000)
        memometer.observe(0x1000)
        assert completed.counts[0] == 0
        assert memometer.active_counts()[0] == 1

    def test_interval_metadata(self):
        memometer = Memometer(make_registers())
        memometer.interval_boundary(10_000_000)
        second = memometer.interval_boundary(20_000_000)
        assert second.interval_index == 1
        assert second.start_time_ns == 10_000_000
        assert memometer.intervals_completed == 2

    def test_on_heatmap_callback(self):
        received = []
        memometer = Memometer(make_registers(), on_heatmap=received.append)
        memometer.observe(0x1000)
        memometer.interval_boundary(10_000_000)
        assert len(received) == 1
        assert received[0].counts[0] == 1


class TestStatistics:
    def test_drop_rate(self):
        memometer = Memometer(make_registers())
        memometer.observe(0x1000)
        memometer.observe(0x0)
        assert memometer.drop_rate == pytest.approx(0.5)

    def test_drop_rate_empty(self):
        assert Memometer(make_registers()).drop_rate == 0.0


class TestSaturationMetrics:
    """Saturation is a silent data-loss mode — it must be observable.

    Regression guard: both datapaths clamp at COUNTER_MAX *and* bump
    the ``memometer.saturated`` counter once per saturated update, so
    an experiment that quietly clips its heat maps shows up in the
    metrics snapshot.
    """

    def test_scalar_saturation_increments_counter(self):
        from repro import obs

        with obs.observed() as (registry, _):
            memometer = Memometer(make_registers())
            memometer.observe(0x1000, weight=COUNTER_MAX)
            assert registry.counter("memometer.saturated").value == 0
            memometer.observe(0x1000)  # would exceed -> clamps
            memometer.observe(0x1000)  # clamps again
            assert memometer.active_counts()[0] == COUNTER_MAX
            assert registry.counter("memometer.saturated").value == 2

    def test_burst_saturation_counts_each_saturated_cell(self):
        from repro import obs

        with obs.observed() as (registry, _):
            memometer = Memometer(make_registers())
            # Two cells at the limit, one far below it.
            memometer.observe_burst(
                make_burst([0x1000, 0x1100], [COUNTER_MAX, COUNTER_MAX])
            )
            memometer.observe_burst(
                make_burst([0x1000, 0x1100, 0x1200], [5, 1, 1])
            )
            counts = memometer.active_counts()
            assert counts[0] == COUNTER_MAX
            assert counts[1] == COUNTER_MAX
            assert counts[2] == 1
            assert registry.counter("memometer.saturated").value == 2

    def test_clamp_preserved_with_observability_disabled(self):
        from repro import obs

        obs.disable()
        memometer = Memometer(make_registers())
        memometer.observe(0x1000, weight=COUNTER_MAX)
        memometer.observe(0x1000, weight=COUNTER_MAX)
        memometer.observe_burst(make_burst([0x1000], [COUNTER_MAX]))
        assert memometer.active_counts()[0] == COUNTER_MAX

    def test_access_accounting_counters(self):
        from repro import obs

        with obs.observed() as (registry, _):
            memometer = Memometer(make_registers())
            memometer.observe(0x1000)  # accepted
            memometer.observe(0x0)  # filtered
            memometer.observe_burst(make_burst([0x1000, 0x0, 0x1200]))
            assert registry.counter("memometer.snooped_accesses").value == 5
            assert registry.counter("memometer.accepted_accesses").value == 3
            assert registry.counter("memometer.filtered_accesses").value == 2

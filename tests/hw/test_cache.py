"""Tests for the cache models and the placement filter."""

import numpy as np
import pytest

from repro.hw.cache import (
    L1_CONFIG,
    L2_CONFIG,
    CacheConfig,
    CacheFilter,
    SetAssociativeCache,
)
from repro.sim.trace import AccessBurst, TraceRecorder


def make_burst(addresses, weights=None, time_ns=0, kind="k"):
    addresses = np.asarray(addresses, dtype=np.int64)
    if weights is None:
        weights = np.ones_like(addresses)
    return AccessBurst(
        time_ns=time_ns,
        addresses=addresses,
        weights=np.asarray(weights, dtype=np.int64),
        kind=kind,
    )


class TestCacheConfig:
    def test_prototype_geometries(self):
        assert L1_CONFIG.size_bytes == 32 * 1024
        assert L1_CONFIG.num_sets == 256
        assert L2_CONFIG.size_bytes == 512 * 1024
        assert L2_CONFIG.num_sets == 2048

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0, ways=4)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, ways=4, line_bytes=32)
        with pytest.raises(ValueError, match="power of two"):
            CacheConfig(size_bytes=4 * 24 * 10, ways=4, line_bytes=24)


class TestSetAssociativeCache:
    def test_first_access_misses_second_hits(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=1024, ways=2))
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.access(0x101F)  # same 32 B line
        assert cache.hits == 2
        assert cache.misses == 1

    def test_lru_eviction(self):
        # 2 ways, 16 sets (1024/2/32): three lines mapping to one set.
        cache = SetAssociativeCache(CacheConfig(size_bytes=1024, ways=2))
        set_stride = 16 * 32
        a, b, c = 0x0, set_stride, 2 * set_stride
        cache.access(a)
        cache.access(b)
        cache.access(c)  # evicts a (LRU)
        assert cache.access(b)
        assert cache.access(c)
        assert not cache.access(a)  # a was evicted

    def test_lru_refresh_on_hit(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=1024, ways=2))
        set_stride = 16 * 32
        a, b, c = 0x0, set_stride, 2 * set_stride
        cache.access(a)
        cache.access(b)
        cache.access(a)  # refresh a; b is now LRU
        cache.access(c)  # evicts b
        assert cache.access(a)
        assert not cache.access(b)

    def test_flush(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=1024, ways=2))
        cache.access(0x1000)
        cache.flush()
        assert not cache.access(0x1000)

    def test_hit_rate(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=1024, ways=2))
        assert cache.hit_rate == 0.0
        cache.access(0x0)
        cache.access(0x0)
        assert cache.hit_rate == pytest.approx(0.5)


class TestCacheFilter:
    def _filter(self):
        downstream = TraceRecorder()
        cache = SetAssociativeCache(CacheConfig(size_bytes=1024, ways=2))
        return CacheFilter(cache, downstream), downstream

    def test_misses_forwarded_once(self):
        cache_filter, downstream = self._filter()
        cache_filter.observe_burst(make_burst([0x1000, 0x1004, 0x2000]))
        assert len(downstream.bursts) == 1
        forwarded = downstream.bursts[0]
        # 0x1000 and 0x1004 share a line: one miss; 0x2000: one miss.
        assert len(forwarded) == 2
        assert forwarded.total_accesses == 2

    def test_weights_collapsed(self):
        """A loop body fetched 100x appears once downstream — the
        information loss of Section 5.5."""
        cache_filter, downstream = self._filter()
        cache_filter.observe_burst(make_burst([0x1000], [100]))
        assert downstream.bursts[0].total_accesses == 1

    def test_warm_cache_forwards_nothing(self):
        cache_filter, downstream = self._filter()
        cache_filter.observe_burst(make_burst([0x1000]))
        cache_filter.observe_burst(make_burst([0x1000]))
        assert len(downstream.bursts) == 1  # second burst fully hit

    def test_burst_metadata_preserved(self):
        cache_filter, downstream = self._filter()
        cache_filter.observe_burst(make_burst([0x1000], time_ns=77, kind="syscall.read"))
        forwarded = downstream.bursts[0]
        assert forwarded.time_ns == 77
        assert forwarded.kind == "syscall.read"

    def test_chained_filters_monotonically_reduce(self):
        final = TraceRecorder()
        l2 = CacheFilter(SetAssociativeCache(L2_CONFIG), final)
        middle = TraceRecorder()

        class Tee:
            def observe_burst(self, burst):
                middle.observe_burst(burst)
                l2.observe_burst(burst)

        l1 = CacheFilter(SetAssociativeCache(L1_CONFIG), Tee())
        rng = np.random.default_rng(0)
        for _ in range(50):
            addresses = rng.integers(0, 256 * 1024, size=200) & ~3
            l1.observe_burst(make_burst(addresses))
        assert final.total_accesses() <= middle.total_accesses()

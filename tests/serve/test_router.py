"""StreamRouter: batching, backpressure policies, obs counters."""

import pytest

from repro import obs
from repro.serve.router import POLICIES, StreamRouter
from repro.sim.fleet import IntervalRecord


class StubWorker:
    """Records batches instead of scoring them."""

    def __init__(self):
        self.batches = []
        self.dropped = []

    def score_batch(self, records):
        self.batches.append(list(records))

    def record_dropped(self, record):
        self.dropped.append(record)


def make_record(i: int) -> IntervalRecord:
    return IntervalRecord(
        device_index=0,
        device_id="dev-0000",
        profile="baseline",
        interval_index=i,
        vector=None,
        truth=False,
    )


class TestValidation:
    def test_policies_tuple(self):
        assert POLICIES == ("block", "drop-oldest")

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(policy="bogus"),
            dict(batch_size=0),
            dict(batch_size=8, capacity=4),
            dict(drain_per_step=0),
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            StreamRouter(StubWorker(), **kwargs)


class TestDefaultDraining:
    def test_drains_full_batches_eagerly(self):
        worker = StubWorker()
        router = StreamRouter(worker, batch_size=4, capacity=16)
        for i in range(10):
            router.submit(make_record(i))
        # Two full batches scored as soon as they filled; 2 left pending.
        assert [len(b) for b in worker.batches] == [4, 4]
        assert len(router.pending) == 2
        router.flush()
        assert [len(b) for b in worker.batches] == [4, 4, 2]
        assert router.pending == type(router.pending)()

    def test_records_arrive_in_order(self):
        worker = StubWorker()
        router = StreamRouter(worker, batch_size=3, capacity=8)
        for i in range(7):
            router.submit(make_record(i))
        router.flush()
        flat = [r.interval_index for batch in worker.batches for r in batch]
        assert flat == list(range(7))

    def test_queue_never_overflows(self):
        worker = StubWorker()
        router = StreamRouter(worker, batch_size=4, capacity=4)
        for i in range(100):
            router.submit(make_record(i))
        assert router.dropped == 0
        assert router.block_stalls == 0


class TestThrottledBlock:
    def test_block_policy_stalls_and_drops_nothing(self):
        worker = StubWorker()
        router = StreamRouter(
            worker, batch_size=4, capacity=4, policy="block", drain_per_step=1
        )
        for i in range(12):
            router.submit(make_record(i))
        router.flush()
        assert router.block_stalls > 0
        assert router.dropped == 0
        flat = [r.interval_index for batch in worker.batches for r in batch]
        assert flat == list(range(12))


class TestThrottledDropOldest:
    def test_evicts_oldest_first(self):
        worker = StubWorker()
        router = StreamRouter(
            worker, batch_size=4, capacity=4, policy="drop-oldest",
            drain_per_step=1,
        )
        for i in range(8):
            router.submit(make_record(i))
        router.flush()
        assert router.dropped == len(worker.dropped) > 0
        dropped = [r.interval_index for r in worker.dropped]
        # The oldest pending records went first.
        assert dropped == sorted(dropped)
        scored = [r.interval_index for batch in worker.batches for r in batch]
        assert set(scored) | set(dropped) == set(range(8))
        assert not set(scored) & set(dropped)

    def test_end_step_spends_drain_budget(self):
        worker = StubWorker()
        router = StreamRouter(
            worker, batch_size=4, capacity=8, policy="drop-oldest",
            drain_per_step=2,
        )
        for i in range(4):
            router.submit(make_record(i))
        assert worker.batches == []  # throttled: nothing drained on submit
        router.end_step()
        assert [len(b) for b in worker.batches] == [2]


class TestObsCounters:
    def test_serve_queue_counters_surface(self):
        with obs.observed():
            worker = StubWorker()
            router = StreamRouter(
                worker, batch_size=2, capacity=2, policy="drop-oldest",
                drain_per_step=1,
            )
            for i in range(6):
                router.submit(make_record(i))
            router.flush()
            snapshot = obs.metrics().snapshot()
        assert snapshot["serve.queue.submitted"]["value"] == 6
        assert snapshot["serve.queue.dropped"]["value"] == router.dropped > 0
        assert snapshot["serve.batches"]["value"] == len(worker.batches)

    def test_block_stall_counter(self):
        with obs.observed():
            router = StreamRouter(
                StubWorker(), batch_size=2, capacity=2, policy="block",
                drain_per_step=1,
            )
            for i in range(6):
                router.submit(make_record(i))
            snapshot = obs.metrics().snapshot()
        assert (
            snapshot["serve.queue.block_stalls"]["value"]
            == router.block_stalls
            > 0
        )

"""Serve-suite fixtures: tiny fleets over a shared artifact cache.

Every test in this package trains profile detectors at a deliberately
tiny :class:`FleetTrainSpec` through one session-scoped on-disk cache,
so the first test pays the EM cost per profile and the rest load the
fitted parameters bit-identically.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.pipeline.cache import ArtifactCache
from repro.serve import FleetTrainSpec, ServeConfig

TINY_TRAIN = FleetTrainSpec(
    runs=1, intervals_per_run=40, validation_intervals=40, em_restarts=1
)


@pytest.fixture(scope="session")
def serve_cache_dir(tmp_path_factory) -> str:
    return str(tmp_path_factory.mktemp("serve-cache"))


@pytest.fixture(scope="session")
def serve_cache(serve_cache_dir) -> ArtifactCache:
    return ArtifactCache(serve_cache_dir)


@pytest.fixture(scope="session")
def base_config(serve_cache_dir) -> ServeConfig:
    """A small but fully-featured fleet: 4 devices, 3 profiles, 2 attacked."""
    return ServeConfig(
        devices=4,
        shards=1,
        intervals=8,
        seed=11,
        attacked_devices=2,
        train=TINY_TRAIN,
        cache_dir=serve_cache_dir,
    )


@pytest.fixture()
def config_factory(base_config):
    """``config_factory(shards=2, ...)`` — the base config, overridden."""

    def factory(**overrides) -> ServeConfig:
        return dataclasses.replace(base_config, **overrides)

    return factory

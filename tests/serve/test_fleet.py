"""Fleet simulator: deterministic specs, truth labels, stream purity."""

import numpy as np
import pytest

from repro.sim.fleet import (
    PROFILES,
    DeviceSpec,
    DeviceStream,
    FleetSimulator,
    build_fleet_specs,
    profile_config,
)


class TestProfiles:
    def test_known_profiles(self):
        assert set(PROFILES) == {"baseline", "rtos", "netload"}

    def test_profile_config_builds(self):
        for name in PROFILES:
            config = profile_config(name)
            assert config.interval_ns > 0

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown device profile"):
            profile_config("toaster")


class TestBuildFleetSpecs:
    def test_deterministic(self):
        a = build_fleet_specs(6, 20, root_seed=3, attacked_devices=2)
        b = build_fleet_specs(6, 20, root_seed=3, attacked_devices=2)
        assert a == b

    def test_seed_changes_device_seeds(self):
        a = build_fleet_specs(4, 10, root_seed=1)
        b = build_fleet_specs(4, 10, root_seed=2)
        assert [s.seed for s in a] != [s.seed for s in b]

    def test_device_seeds_distinct(self):
        specs = build_fleet_specs(16, 10, root_seed=0)
        seeds = [s.seed for s in specs]
        assert len(set(seeds)) == len(seeds)

    def test_profiles_cycle(self):
        specs = build_fleet_specs(6, 10, profiles=("baseline", "rtos"))
        assert [s.profile for s in specs] == ["baseline", "rtos"] * 3

    def test_attacks_spread_and_scenarios_cycle(self):
        specs = build_fleet_specs(
            8,
            20,
            attacked_devices=3,
            attack_scenarios=("shellcode", "rootkit"),
        )
        attacked = [s for s in specs if s.attacked]
        assert len(attacked) == 3
        # Spread across the index range, not clustered at the front.
        assert [s.index for s in attacked] == [0, 2, 5]
        assert [s.scenario for s in attacked] == [
            "shellcode",
            "rootkit",
            "shellcode",
        ]
        for spec in attacked:
            assert spec.inject_interval == 10

    def test_only_reversible_attacks_revert(self):
        specs = build_fleet_specs(
            3, 40, attacked_devices=3,
            attack_scenarios=("app-launch", "shellcode", "rootkit"),
        )
        by_scenario = {s.scenario: s for s in specs}
        # app-launch (qsort exits) and rootkit (module unhooks) are
        # reversible; the shellcode permanently kills its host task.
        assert by_scenario["app-launch"].revert_interval is not None
        assert by_scenario["rootkit"].revert_interval is not None
        assert by_scenario["shellcode"].revert_interval is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(devices=0, intervals=10),
            dict(devices=2, intervals=0),
            dict(devices=2, intervals=10, attacked_devices=3),
            dict(devices=2, intervals=10, inject_fraction=1.5),
            dict(devices=2, intervals=10, profiles=()),
            dict(devices=2, intervals=10, profiles=("bogus",)),
            dict(devices=2, intervals=10, attacked_devices=1,
                 attack_scenarios=("bogus",)),
        ],
    )
    def test_invalid_inputs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            build_fleet_specs(**kwargs)


class TestDeviceSpecValidation:
    def test_attack_needs_inject_interval(self):
        with pytest.raises(ValueError, match="inject_interval"):
            DeviceSpec(
                device_id="d", index=0, profile="baseline", seed=1,
                scenario="shellcode",
            )

    def test_revert_after_inject(self):
        with pytest.raises(ValueError, match="revert_interval"):
            DeviceSpec(
                device_id="d", index=0, profile="baseline", seed=1,
                scenario="app-launch", inject_interval=5, revert_interval=5,
            )


class TestDeviceStream:
    def test_truth_labels_bracket_attack_window(self):
        spec = DeviceSpec(
            device_id="d", index=0, profile="baseline", seed=99,
            scenario="app-launch", inject_interval=2, revert_interval=4,
        )
        stream = DeviceStream(spec)
        truths = [stream.next_interval().truth for _ in range(7)]
        assert truths == [False, False, True, True, True, False, False]

    def test_benign_device_never_true(self):
        spec = DeviceSpec(device_id="d", index=0, profile="baseline", seed=99)
        stream = DeviceStream(spec)
        records = [stream.next_interval() for _ in range(4)]
        assert all(not r.truth for r in records)
        assert [r.interval_index for r in records] == [0, 1, 2, 3]
        assert all(r.vector.dtype == np.float64 for r in records)


class TestFleetSimulator:
    def test_interleaving_order(self):
        specs = build_fleet_specs(3, 4, root_seed=5)
        sim = FleetSimulator(specs)
        records = list(sim.run(2))
        assert [r.device_index for r in records] == [0, 1, 2, 0, 1, 2]
        assert [r.interval_index for r in records] == [0, 0, 0, 1, 1, 1]

    def test_stream_purity(self):
        """A device's records don't depend on the rest of the fleet.

        This is the foundation of the serial ≡ sharded contract: the
        same spec alone and inside a fleet emits bit-identical MHMs.
        """
        specs = build_fleet_specs(3, 3, root_seed=5, attacked_devices=1)
        fleet_records = [
            r for r in FleetSimulator(specs).run(3) if r.device_index == 1
        ]
        solo_records = list(FleetSimulator([specs[1]]).run(3))
        assert len(fleet_records) == len(solo_records) == 3
        for a, b in zip(fleet_records, solo_records):
            assert a.interval_index == b.interval_index
            assert a.truth == b.truth
            np.testing.assert_array_equal(a.vector, b.vector)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError, match="at least one device"):
            FleetSimulator([])

"""Fused-path compute dtype at the serving layer.

The float32 fast path must honour the same determinism contract as
float64: the dtype is resolved once in the parent, shipped to every
shard, and the resulting fleet reports stay bit-identical across shard
counts under either dtype and either modality.  ``kernels_dtype=None``
(the default) must mean exactly ``"float64"`` — the shipped-digest
path — so enabling the plumbing cannot move a single digest.
"""

import dataclasses
import itertools

import pytest

from repro import kernels
from repro.serve import FleetService

pytestmark = [pytest.mark.contexts]


def _run(config, **overrides):
    return FleetService(dataclasses.replace(config, **overrides)).run()


class TestConfigValidation:
    def test_rejects_unknown_dtype(self, base_config):
        with pytest.raises(ValueError, match="float16"):
            dataclasses.replace(base_config, kernels_dtype="float16")

    def test_accepts_both_dtypes_and_none(self, base_config):
        for dtype in (None,) + kernels.DTYPES:
            config = dataclasses.replace(base_config, kernels_dtype=dtype)
            assert config.kernels_dtype == dtype


class TestReportPlumbing:
    def test_default_resolves_to_float64(self, base_config):
        report = _run(base_config)
        assert report.kernels_dtype == "float64"

    def test_report_carries_float32(self, base_config):
        report = _run(base_config, kernels_dtype="float32")
        assert report.kernels_dtype == "float32"

    def test_none_is_exactly_float64(self, base_config):
        """Adding the dtype plumbing must not move a single digest."""
        implicit = _run(base_config)
        explicit = _run(base_config, kernels_dtype="float64")
        assert implicit.fleet_digest == explicit.fleet_digest
        assert implicit.canonical_dict() == explicit.canonical_dict()

    def test_float32_digests_differ_from_float64(self, base_config):
        """The fast path really computes in float32 (different bits)."""
        f64 = _run(base_config)
        f32 = _run(base_config, kernels_dtype="float32")
        assert f64.fleet_digest != f32.fleet_digest


class TestShardInvarianceUnderDtype:
    """serial ≡ 2 ≡ 4 shards, for every (dtype, modality) pair."""

    @pytest.mark.parametrize(
        "dtype,modality",
        list(itertools.product(kernels.DTYPES, ("mhm", "ensemble"))),
    )
    def test_canonical_reports_bit_identical(
        self, base_config, dtype, modality
    ):
        intervals = 24 if modality == "ensemble" else 8
        serial = _run(
            base_config,
            kernels_dtype=dtype,
            modality=modality,
            intervals=intervals,
        )
        for shards in (2, 4):
            sharded = _run(
                base_config,
                kernels_dtype=dtype,
                modality=modality,
                intervals=intervals,
                shards=shards,
            )
            assert sharded.fleet_digest == serial.fleet_digest
            assert sharded.canonical_dict() == serial.canonical_dict()
            assert sharded.kernels_dtype == dtype

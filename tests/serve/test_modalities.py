"""Second-modality serving: ensemble fleets stay shard-invariant.

The serving layer's acceptance bar for the context modality: running
the adversarial corpus through ``FleetService`` with the ensemble
enabled must stay **bit-identical across shard counts** — the context
drift channel is stateful per device (a residual cumsum), so this
pins that the state lives with the device and not with the shard —
and the per-modality telemetry counters must actually count.
"""

import dataclasses

import pytest

from repro import obs
from repro.learn.ensemble import EnsembleConfig
from repro.serve import FleetService
from repro.serve.worker import MODALITIES, ShardWorker

pytestmark = [pytest.mark.contexts]


@pytest.fixture(scope="module")
def ensemble_config(base_config):
    # 24 intervals: enough stream for the app-launch device's drift
    # statistic to clear the calibrated bound.
    return dataclasses.replace(
        base_config, intervals=24, modality="ensemble"
    )


@pytest.fixture(scope="module")
def serial_ensemble_report(ensemble_config):
    return FleetService(ensemble_config).run()


class TestShardInvariance:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_ensemble_canonical_report_bit_identical(
        self, serial_ensemble_report, ensemble_config, shards
    ):
        sharded = FleetService(
            dataclasses.replace(ensemble_config, shards=shards)
        ).run()
        assert (
            sharded.canonical_dict()
            == serial_ensemble_report.canonical_dict()
        )
        assert (
            sharded.fleet_digest == serial_ensemble_report.fleet_digest
        )

    def test_contexts_only_modality_is_also_invariant(self, ensemble_config):
        contexts_config = dataclasses.replace(
            ensemble_config, modality="contexts"
        )
        serial = FleetService(contexts_config).run()
        sharded = FleetService(
            dataclasses.replace(contexts_config, shards=2)
        ).run()
        assert serial.canonical_dict() == sharded.canonical_dict()

    def test_mhm_digests_unchanged_by_the_new_schema(self, base_config):
        # Single-modality serving must not notice the second modality
        # exists: same config, same digests as any pre-ensemble build
        # (the context hash only chains in when context scores flow).
        report = FleetService(base_config).run()
        assert report.modality == "mhm"
        for device in report.device_reports:
            assert device.context_flagged == 0
            assert device.context_drift_max is None
            assert not device.context_drift_exceeded


class TestEnsembleVerdicts:
    def test_report_carries_the_modality(self, serial_ensemble_report):
        assert serial_ensemble_report.modality == "ensemble"

    def test_context_channel_sees_the_attack(self, serial_ensemble_report):
        attacked = [
            d
            for d in serial_ensemble_report.device_reports
            if d.scenario is not None
        ]
        assert attacked
        # At least one attacked device trips the context modality —
        # interval flags or the drift channel.
        assert any(
            d.context_flagged > 0 or d.context_drift_exceeded
            for d in attacked
        )
        assert all(d.alarms > 0 for d in attacked)

    def test_clean_devices_keep_drift_bounded(self, serial_ensemble_report):
        clean = [
            d
            for d in serial_ensemble_report.device_reports
            if d.scenario is None
        ]
        assert clean
        assert not any(d.context_drift_exceeded for d in clean)

    def test_or_rule_flags_superset_of_mhm_only(
        self, base_config, ensemble_config
    ):
        mhm_only = FleetService(
            dataclasses.replace(base_config, intervals=24)
        ).run()
        by_id = {d.device_id: d for d in mhm_only.device_reports}
        for device in FleetService(ensemble_config).run().device_reports:
            # p_mhm drops from 1.0 to 0.5 under the budget split, so
            # the MHM channel alone flags no more than before; the OR
            # fusion can only add the context channel's flags on top.
            assert device.flagged >= by_id[device.device_id].flagged or (
                device.context_flagged == 0
            )


class TestModalityTelemetry:
    def test_per_modality_counters_count(self, ensemble_config):
        with obs.observed() as (metrics, _tracer):
            FleetService(ensemble_config).run()
            snapshot = metrics.snapshot()
        mhm_flags = snapshot['serve.modality.flags{modality="mhm"}']
        context_flags = snapshot['serve.modality.flags{modality="context"}']
        alarms = snapshot['serve.modality.alarms{modality="ensemble"}']
        assert mhm_flags["value"] > 0
        assert context_flags["value"] > 0
        assert alarms["value"] > 0

    def test_mhm_run_reports_its_own_alarm_label(self, base_config):
        with obs.observed() as (metrics, _tracer):
            FleetService(base_config).run()
            snapshot = metrics.snapshot()
        assert 'serve.modality.alarms{modality="mhm"}' in snapshot
        assert (
            'serve.modality.alarms{modality="ensemble"}' not in snapshot
        )


class TestConfigValidation:
    def test_modality_registry(self):
        assert MODALITIES == ("mhm", "contexts", "ensemble")

    def test_unknown_modality_rejected(self, base_config):
        with pytest.raises(ValueError, match="modality"):
            dataclasses.replace(base_config, modality="telepathy")

    def test_worker_requires_context_models(self):
        with pytest.raises(ValueError, match="context"):
            ShardWorker(
                detectors={},
                specs=[],
                modality="ensemble",
                ensemble=EnsembleConfig(),
            )

"""ShardWorker: fixed-shape batch scoring and per-record degradation."""

import numpy as np
import pytest

from repro import faults
from repro.serve.registry import DetectorRegistry
from repro.serve.worker import ShardWorker, batched_log_densities
from repro.sim.fleet import DeviceSpec, DeviceStream, IntervalRecord, build_fleet_specs
from tests.serve.conftest import TINY_TRAIN


@pytest.fixture(scope="module")
def detector(serve_cache):
    registry = DetectorRegistry(root_seed=3, train=TINY_TRAIN, cache=serve_cache)
    return registry.detector_for("baseline")


@pytest.fixture(scope="module")
def records():
    """Nine real MHM records from one benign baseline device."""
    spec = build_fleet_specs(1, 9, root_seed=21, profiles=("baseline",))[0]
    stream = DeviceStream(spec)
    return [stream.next_interval() for _ in range(9)]


def make_worker(detector, specs, **kwargs):
    return ShardWorker({"baseline": detector}, specs, **kwargs)


class TestFixedShapeBatching:
    def test_score_independent_of_batch_composition(self, detector, records):
        """The serial ≡ sharded keystone: a record's log-density is
        bitwise identical whether scored alone, in a partial batch, or
        in a full batch with arbitrary companions."""
        matrix = np.stack([r.vector for r in records])
        together = batched_log_densities(detector, matrix, pad_to=4)
        for i, row in enumerate(matrix):
            alone = batched_log_densities(detector, row[None, :], pad_to=4)
            assert alone[0] == together[i]

    def test_row_order_irrelevant(self, detector, records):
        matrix = np.stack([r.vector for r in records])
        forward = batched_log_densities(detector, matrix, pad_to=4)
        backward = batched_log_densities(detector, matrix[::-1], pad_to=4)
        np.testing.assert_array_equal(forward, backward[::-1])

    def test_matches_unbatched_scoring_closely(self, detector, records):
        # Same kernels, different batch shapes: equal to rounding.
        matrix = np.stack([r.vector for r in records])
        batched = batched_log_densities(detector, matrix, pad_to=4)
        reference = detector.score_series(matrix)
        np.testing.assert_allclose(batched, reference, rtol=1e-9, atol=1e-9)

    def test_rejects_non_matrix(self, detector):
        with pytest.raises(ValueError, match="2-D"):
            batched_log_densities(detector, np.zeros(8))


class TestWorkerScoring:
    def test_verdicts_and_accounting(self, detector, records):
        spec = records[0].device_index
        specs = build_fleet_specs(1, 9, root_seed=21, profiles=("baseline",))
        worker = make_worker(detector, specs, batch_pad=4)
        worker.score_batch(records[:5])
        worker.score_batch(records[5:])
        report = worker.device_report(specs[0], shard=0)
        assert report.emitted == 9
        assert report.scored + report.skipped == 9
        assert report.dropped == 0
        assert spec == report.device_index

    def test_alarm_streak_semantics(self):
        """Alarm fires at exactly N consecutive anomalous intervals."""

        class FakeDetector:
            def threshold(self, p_percent):
                return -5.0

        spec = DeviceSpec(device_id="d", index=0, profile="baseline", seed=1)
        worker = ShardWorker(
            {"baseline": FakeDetector()}, [spec], consecutive_for_alarm=3
        )
        state = worker.states["d"]
        theta = -5.0
        # 3 anomalous in a row (alarm), recovery, then only 2 (no alarm).
        pattern = [-10, -10, -10, -1, -10, -10, -1]
        for i, score in enumerate(pattern):
            record = IntervalRecord(
                device_index=0, device_id="d", profile="baseline",
                interval_index=i, vector=None, truth=False,
            )
            worker._record(state, record, float(score), theta)
        assert state.alarms == [2]  # fired once, at the third consecutive
        report = worker.device_report(spec, shard=0)
        assert report.alarms == 1
        assert report.first_alarm_interval == 2
        assert report.flagged == 5

    def test_fault_plan_degrades_to_skipped(self, detector, records):
        specs = build_fleet_specs(1, 9, root_seed=21, profiles=("baseline",))
        plan = faults.FaultPlan(
            seed=1,
            sites={
                "serve.score": faults.FaultSpec(probability=1.0, mode="corrupt")
            },
        )
        with faults.injected(plan):
            worker = make_worker(detector, specs, batch_pad=4)
            worker.score_batch(records)
        report = worker.device_report(specs[0], shard=0)
        assert report.skipped == 9
        assert report.scored == 0

    def test_skip_resets_alarm_streak(self, detector, records):
        specs = build_fleet_specs(1, 9, root_seed=21, profiles=("baseline",))
        worker = make_worker(detector, specs, batch_pad=4)
        state = worker.states[specs[0].device_id]
        state.streak = 2
        worker._skip(state, records[0])
        assert state.streak == 0
        assert state.flags[-1] == "skipped"

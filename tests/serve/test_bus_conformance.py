"""The bus-conformance oracle: lockstep ≡ async, bit for bit.

The lockstep executor is the *reference semantics* — a welded serial
loop whose reports the whole historical suite pins.  The async
executor reimplements the same data plane as bus subscribers.  This
suite is the contract between them: for every configuration both
support, the canonical fleet reports (per-device digest chains
included) must be **bit-identical** — across executors, across shard
counts, under fault plans, under either modality and either compute
dtype.

Cadence and recalibration runs have no lockstep twin (both are
async-only features); for those the oracle degrades to async-internal
shard invariance plus spot-checked semantics.
"""

import dataclasses

import pytest

from repro import faults
from repro.serve import FleetService, health_summary

pytestmark = pytest.mark.bus


def _run(config, *, fault_plan=None, **overrides):
    return FleetService(
        dataclasses.replace(config, **overrides), fault_plan=fault_plan
    ).run()


@pytest.fixture(scope="module")
def lockstep_report(base_config):
    return FleetService(base_config).run()


class TestExecutorIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_async_matches_lockstep_bitwise(
        self, lockstep_report, base_config, shards
    ):
        report = _run(base_config, executor="async", shards=shards)
        assert report.canonical_dict() == lockstep_report.canonical_dict()
        assert report.fleet_digest == lockstep_report.fleet_digest

    def test_executor_is_recorded_but_not_digested(
        self, lockstep_report, base_config
    ):
        report = _run(base_config, executor="async")
        assert report.executor == "async"
        assert lockstep_report.executor == "lockstep"
        # canonical_dict pops the executor field: the digests carry
        # the *scores*, not the machinery that produced them.
        assert "executor" not in report.canonical_dict()

    def test_async_ledger_is_clean(self, base_config):
        report = _run(base_config, executor="async")
        assert report.emitted == report.scored
        assert report.dropped == 0 and report.skipped == 0
        assert report.bus["published"] >= report.emitted
        assert health_summary(report)["ready"] is True


class TestFaultedIdentity:
    @pytest.mark.parametrize(
        "sites",
        [
            {"serve.score": dict(probability=0.3, mode="corrupt")},
            {"serve.score": dict(probability=0.3, mode="raise")},
        ],
        ids=["corrupt", "raise"],
    )
    def test_score_faults_identical_across_executors(
        self, base_config, sites
    ):
        def plan():
            return faults.FaultPlan(
                seed=5,
                sites={
                    site: faults.FaultSpec(**spec)
                    for site, spec in sites.items()
                },
            )

        lockstep = _run(base_config, fault_plan=plan())
        assert lockstep.skipped > 0  # the plan actually fired
        for shards in (1, 2):
            report = _run(
                base_config, executor="async", shards=shards,
                fault_plan=plan(),
            )
            assert report.canonical_dict() == lockstep.canonical_dict()

    def test_skip_positions_are_batch_composition_independent(
        self, base_config
    ):
        """The regression pinned by the PR-10 ordering fix: a skipped
        record must land at its own interval position in the digest
        chain whether it was scored in a 32-record lockstep batch or a
        4-record bus batch."""
        plan = faults.FaultPlan(
            seed=5,
            sites={
                "serve.score": faults.FaultSpec(
                    probability=0.3, mode="corrupt"
                )
            },
        )
        report = _run(
            base_config, fault_plan=plan, keep_densities=True
        )
        for entry in report.device_reports:
            expected_skips = [
                i
                for i in range(base_config.intervals)
                if plan.would_fire(
                    "serve.score", f"{entry.device_id}@{i}"
                )
            ]
            actual_skips = [
                i
                for i, density in enumerate(entry.log_densities)
                if density != density  # NaN
            ]
            assert actual_skips == expected_skips


class TestModalityAndDtypeIdentity:
    @pytest.fixture(scope="class")
    def ensemble_config(self, base_config):
        return dataclasses.replace(
            base_config, intervals=24, modality="ensemble"
        )

    def test_ensemble_identical_across_executors(self, ensemble_config):
        lockstep = FleetService(ensemble_config).run()
        report = _run(ensemble_config, executor="async", shards=2)
        assert report.canonical_dict() == lockstep.canonical_dict()

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_dtypes_identical_across_executors(self, base_config, dtype):
        lockstep = _run(base_config, kernels_dtype=dtype)
        report = _run(
            base_config, executor="async", shards=2, kernels_dtype=dtype
        )
        assert report.canonical_dict() == lockstep.canonical_dict()
        assert report.kernels_dtype == dtype


class TestCadences:
    def test_cadence_run_is_shard_invariant(self, base_config):
        reference = _run(
            base_config, executor="async", cadences=(1, 2), intervals=16
        )
        sharded = _run(
            base_config, executor="async", cadences=(1, 2), intervals=16,
            shards=2,
        )
        assert sharded.canonical_dict() == reference.canonical_dict()

    def test_cadence_emission_counts_and_health(self, base_config):
        report = _run(
            base_config, executor="async", cadences=(1, 2), intervals=16
        )
        by_cadence = {}
        for entry in report.device_reports:
            by_cadence.setdefault(entry.cadence, []).append(entry.emitted)
        # Device i gets cadences[i % 2]: two full-rate, two half-rate.
        assert by_cadence == {1: [16, 16], 2: [8, 8]}
        assert report.emitted == 48
        summary = health_summary(report)
        assert summary["ready"] is True  # the complete check is
        # cadence-aware: 8 emitted records on a cadence-2 device is full

    def test_cadence_one_everywhere_matches_lockstep(
        self, lockstep_report, base_config
    ):
        """cadences=(1,) is the degenerate case: every device ticks
        every step, so the run must equal the cadence-free reference."""
        report = _run(base_config, executor="async", cadences=(1,))
        canonical = report.canonical_dict()
        assert canonical == lockstep_report.canonical_dict()

    def test_cadences_rejected_under_lockstep(self, base_config):
        with pytest.raises(ValueError, match="async"):
            dataclasses.replace(base_config, cadences=(1, 2))

"""Fleet telemetry: serial ≡ sharded with everything on, merge, health.

The PR-1 contract says telemetry must never perturb scoring.  These
tests turn *all* of it on — metrics, tracing, logging, snapshots — and
assert the fleet report stays bit-identical across shard counts, then
check the merged telemetry itself is deterministic and complete.
"""

import json
from types import SimpleNamespace

import pytest

from repro import obs
from repro.obs.snapshots import load_snapshots
from repro.serve import (
    SERVE_TRACE_CATEGORIES,
    FleetService,
    TelemetryConfig,
    health_summary,
    write_health,
)


def _run(config_factory, tmp_path=None, shards=1, **telemetry_overrides):
    """One fully-telemetered run; returns (report, metrics, tracer, log)."""
    with obs.observed(trace_categories=SERVE_TRACE_CATEGORIES) as (metrics, tracer):
        overrides = dict(telemetry_overrides)
        if tmp_path is not None:
            overrides.setdefault("metrics_dir", str(tmp_path))
            overrides.setdefault("metrics_interval", 4)
        telemetry = TelemetryConfig.from_current(**overrides)
        report = FleetService(
            config_factory(shards=shards), telemetry=telemetry
        ).run()
        records = obs.logger().records()
        events = list(tracer.events)
        snapshot = metrics.snapshot()
    return report, snapshot, events, records


class TestSerialShardedEquivalence:
    def test_reports_bit_identical_with_full_telemetry(
        self, config_factory, tmp_path
    ):
        serial, *_ = _run(config_factory, tmp_path / "s1", shards=1)
        sharded, *_ = _run(config_factory, tmp_path / "s2", shards=2)
        assert serial.canonical_dict() == sharded.canonical_dict()
        assert serial.fleet_digest == sharded.fleet_digest

    def test_trace_id_sets_match_across_shard_counts(
        self, config_factory, tmp_path
    ):
        _, _, serial_events, _ = _run(config_factory, shards=1)
        _, _, sharded_events, _ = _run(config_factory, shards=2)

        def trace_ids(events):
            return {
                e["args"]["trace_id"]
                for e in events
                if "args" in e and "trace_id" in e.get("args", {})
            }

        serial_ids = trace_ids(serial_events)
        assert serial_ids  # the fleet actually traced something
        assert serial_ids == trace_ids(sharded_events)

    def test_same_run_twice_gives_identical_telemetry(self, config_factory):
        first = _run(config_factory, shards=1)
        second = _run(config_factory, shards=1)
        assert first[0].canonical_dict() == second[0].canonical_dict()
        assert first[2] == second[2]  # trace events, byte-for-byte
        assert first[3] == second[3]  # log records


class TestShardMerge:
    def test_counters_aggregate_across_shards(self, config_factory):
        report, snapshot, _, _ = _run(config_factory, shards=2)
        per_shard = [
            snapshot[f'serve.shard.intervals_scored{{shard="{s}"}}']["value"]
            for s in (0, 1)
        ]
        assert sum(per_shard) == report.scored
        assert all(v > 0 for v in per_shard)

    def test_log_records_merged_in_shard_order(self, config_factory):
        _, _, _, records = _run(config_factory, shards=2)
        events = [r["event"] for r in records]
        assert events[:2] == ["serve.start", "serve.detectors.ready"]
        assert events[-1] == "serve.report.ready"
        assert events.count("serve.shard.start") == 2
        assert events.count("serve.shard.done") == 2
        # Shard 0's records precede shard 1's (deterministic merge).
        starts = [r["shard"] for r in records if r["event"] == "serve.shard.start"]
        assert starts == [0, 1]

    def test_snapshot_files_written_per_shard(self, config_factory, tmp_path):
        _run(config_factory, tmp_path, shards=2)
        series = load_snapshots(tmp_path)
        assert sorted(series) == [0, 1]
        for shard, snapshots in series.items():
            assert snapshots[-1]["final"] is True
            assert snapshots[-1]["meta"]["devices"] == 2
            metrics = snapshots[-1]["metrics"]
            assert (
                metrics[f'serve.shard.intervals_scored{{shard="{shard}"}}']["value"]
                > 0
            )

    def test_disabled_telemetry_returns_no_payload(self, config_factory):
        report = FleetService(
            config_factory(shards=2), telemetry=TelemetryConfig.disabled()
        ).run()
        assert report.devices == 4
        assert not obs.metrics().enabled


class TestTelemetryConfig:
    def test_from_current_mirrors_obs_state(self):
        assert not TelemetryConfig.from_current().any_enabled
        with obs.observed(trace_categories=("serve",)):
            telemetry = TelemetryConfig.from_current()
            assert telemetry.metrics and telemetry.tracing and telemetry.logging
            assert telemetry.trace_categories == ("serve",)

    def test_overrides_win(self, tmp_path):
        with obs.observed():
            telemetry = TelemetryConfig.from_current(
                metrics_dir=str(tmp_path), metrics_interval=7
            )
        assert telemetry.metrics_dir == str(tmp_path)
        assert telemetry.metrics_interval == 7


def _report_like(**overrides):
    base = dict(
        devices=4, intervals=8, emitted=32, dropped=0, skipped=0,
        scored=32, devices_drifted=0, alarms=2, fleet_digest="abc123",
        device_reports=[SimpleNamespace(cadence=1) for _ in range(4)],
        bus=None,
    )
    base.update(overrides)
    return SimpleNamespace(**base)


class TestHealth:
    def test_ready_when_all_critical_pass(self):
        summary = health_summary(_report_like())
        assert summary["ready"] is True
        assert summary["status"] == "ready"
        assert {c["name"] for c in summary["checks"]} == {
            "complete", "no_loss", "detectors", "no_drift",
        }

    def test_loss_unreadies(self):
        summary = health_summary(_report_like(dropped=3))
        assert summary["ready"] is False
        assert summary["status"] == "degraded"
        failing = {c["name"] for c in summary["checks"] if not c["ok"]}
        assert failing == {"no_loss"}

    def test_drift_degrades_but_stays_ready(self):
        summary = health_summary(_report_like(devices_drifted=1))
        assert summary["ready"] is True
        assert summary["status"] == "degraded"

    def test_write_health_round_trips(self, tmp_path):
        path = tmp_path / "health.json"
        summary = write_health(path, _report_like())
        assert json.loads(path.read_text()) == summary

    def test_real_report_is_ready(self, config_factory):
        report = FleetService(config_factory()).run()
        summary = health_summary(report)
        assert summary["ready"] is True
        assert summary["fleet_digest"] == report.fleet_digest

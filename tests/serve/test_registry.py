"""DetectorRegistry: memoisation, cache round-trips, payload hand-off."""

import numpy as np

from repro.serve.registry import DetectorRegistry, FleetTrainSpec, _profile_seeds
from tests.serve.conftest import TINY_TRAIN


class TestProfileSeeds:
    def test_deterministic(self):
        assert _profile_seeds(7, "baseline") == _profile_seeds(7, "baseline")

    def test_profiles_independent(self):
        assert _profile_seeds(7, "baseline") != _profile_seeds(7, "rtos")

    def test_root_seed_matters(self):
        assert _profile_seeds(7, "baseline") != _profile_seeds(8, "baseline")


class TestRegistry:
    def test_memoises_per_profile(self, serve_cache):
        registry = DetectorRegistry(root_seed=3, train=TINY_TRAIN, cache=serve_cache)
        first = registry.detector_for("baseline")
        assert registry.detector_for("baseline") is first
        assert first.is_fitted

    def test_cache_round_trip_bit_identical(self, serve_cache):
        cold = DetectorRegistry(root_seed=3, train=TINY_TRAIN, cache=serve_cache)
        warm = DetectorRegistry(root_seed=3, train=TINY_TRAIN, cache=serve_cache)
        a = cold.detector_for("baseline").to_arrays()
        b = warm.detector_for("baseline").to_arrays()
        assert warm.cache_hits > 0
        assert a.keys() == b.keys()
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])

    def test_uncached_training_works(self):
        registry = DetectorRegistry(root_seed=3, train=TINY_TRAIN, cache=None)
        assert registry.detector_for("baseline").is_fitted

    def test_payload_round_trip_scores_bit_identically(self, serve_cache, rng):
        registry = DetectorRegistry(root_seed=3, train=TINY_TRAIN, cache=serve_cache)
        payload = registry.arrays_payload(["baseline", "baseline"])
        assert set(payload) == {"baseline"}
        rebuilt = DetectorRegistry.detectors_from_payload(payload)["baseline"]
        original = registry.detector_for("baseline")
        spec = original.eigenmemory.mean_.shape[0]
        batch = rng.uniform(0, 50, size=(5, spec))
        np.testing.assert_array_equal(
            original.score_series(batch), rebuilt.score_series(batch)
        )
        assert rebuilt.threshold(1.0) == original.threshold(1.0)


class TestFleetTrainSpecValidation:
    def test_rejects_empty_training(self):
        for bad in (
            dict(runs=0),
            dict(intervals_per_run=0),
            dict(validation_intervals=0),
        ):
            try:
                FleetTrainSpec(**bad)
            except ValueError:
                continue
            raise AssertionError(f"{bad} should have been rejected")

"""Property suite: bus invariants under adversarial (seeded) schedules.

Hypothesis draws queue capacities, event counts and a
:class:`SchedulingJitter` seed; the jitter stirs the asyncio ready
queue with pure-hash yield bursts, so every drawn seed explores one
reproducible interleaving.  The invariants must hold under *all* of
them:

* per ``(publisher, topic)`` delivery is FIFO (seq strictly increases);
* ``block`` loses nothing, whatever the capacity or schedule;
* ``drop-oldest`` evicts exactly the oldest (both the delivered and
  the evicted sequences stay in publication order, and they partition
  the published set);
* a crashed subscriber poisons and detaches — the run completes
  degraded instead of deadlocking, whatever the crash point.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.bus import EventBus, SchedulingJitter, run_subscriber

pytestmark = pytest.mark.bus


def run(coro):
    return asyncio.run(coro)


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    capacity=st.integers(min_value=1, max_value=8),
    counts=st.lists(
        st.integers(min_value=1, max_value=12), min_size=1, max_size=3
    ),
)
@settings(max_examples=40, deadline=None)
def test_fifo_per_publisher_under_any_schedule(seed, capacity, counts):
    """Concurrent publishers, one consumer, seeded jitter: each
    publisher's events arrive in publication (seq) order."""

    async def scenario():
        jitter = SchedulingJitter(seed, amplitude=2)
        bus = EventBus(jitter=jitter)
        sub = bus.subscribe("tap", "t", capacity=capacity, policy="block")
        received = []

        async def publish_all(name, count):
            for i in range(count):
                await bus.publish("t", i, publisher=name)

        async def consume():
            while True:
                event = await sub.get()
                if event is None:
                    return
                await jitter.point("consume")
                received.append(event)

        consumer = asyncio.ensure_future(consume())
        await asyncio.gather(
            *(
                publish_all(f"p{idx}", count)
                for idx, count in enumerate(counts)
            )
        )
        sub.close()
        await consumer
        return received

    received = run(scenario())
    per_publisher = {}
    for event in received:
        per_publisher.setdefault(event.publisher, []).append(event.seq)
    for name, seqs in per_publisher.items():
        assert seqs == sorted(seqs), f"{name} delivered out of order: {seqs}"
        assert seqs == list(range(len(seqs)))  # dense: FIFO and complete


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    capacity=st.integers(min_value=1, max_value=4),
    count=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=40, deadline=None)
def test_block_policy_never_loses(seed, capacity, count):
    async def scenario():
        jitter = SchedulingJitter(seed, amplitude=2)
        bus = EventBus(jitter=jitter)
        sub = bus.subscribe("tap", "t", capacity=capacity, policy="block")
        received = []

        async def produce():
            for i in range(count):
                await bus.publish("t", i, publisher="p")
            sub.close()

        producer = asyncio.ensure_future(produce())
        while True:
            await jitter.point("consume")
            event = await sub.get()
            if event is None:
                break
            received.append(event.payload)
        await producer
        return received, bus.stats()

    received, stats = run(scenario())
    assert received == list(range(count))  # nothing lost, order kept
    assert stats["dropped"] == 0
    assert stats["shed"] == 0


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    capacity=st.integers(min_value=1, max_value=4),
    count=st.integers(min_value=1, max_value=30),
    drain_stride=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=40, deadline=None)
def test_drop_oldest_evicts_exactly_the_oldest(
    seed, capacity, count, drain_stride
):
    """Under any interleaving: delivered ∪ evicted partitions the
    published sequence, and *both* stay in publication order — an
    eviction always takes the oldest pending event."""

    async def scenario():
        jitter = SchedulingJitter(seed, amplitude=2)
        evicted = []
        bus = EventBus(jitter=jitter)
        sub = bus.subscribe(
            "tap", "t", capacity=capacity, policy="drop-oldest",
            on_drop=lambda e: evicted.append(e.seq),
        )
        received = []

        async def produce():
            for i in range(count):
                await bus.publish("t", i, publisher="p")
            sub.close()

        producer = asyncio.ensure_future(produce())
        drained = 0
        while True:
            # drain_stride=0 never consumes until close-drain; larger
            # strides consume at different rates — different pressure.
            if drain_stride == 0:
                await producer
            event = await sub.get()
            if event is None:
                break
            received.append(event.seq)
            drained += 1
            for _ in range(drain_stride):
                await jitter.point("consume")
        await producer
        return received, evicted

    received, evicted = run(scenario())
    assert sorted(received + evicted) == list(range(count))  # partition
    assert received == sorted(received)  # delivery in publication order
    assert evicted == sorted(evicted)  # evictions oldest-first
    if evicted and received:
        # An evicted event is always older than the newest kept one.
        assert evicted[0] < received[-1]


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    count=st.integers(min_value=1, max_value=20),
    crash_at=st.integers(min_value=0, max_value=19),
)
@settings(max_examples=40, deadline=None)
def test_subscriber_crash_degrades_never_deadlocks(seed, count, crash_at):
    """A handler that crashes at any point poisons its subscription;
    the publisher keeps going (a closed queue absorbs puts) and the
    whole run completes with the failure on the manifest."""

    async def scenario():
        jitter = SchedulingJitter(seed, amplitude=2)
        bus = EventBus(jitter=jitter, stall_timeout=5.0)
        sub = bus.subscribe("fragile", "t", capacity=2, policy="block")
        handled = []

        def handler(event):
            if event.payload == min(crash_at, count - 1):
                raise RuntimeError("crash point")
            handled.append(event.payload)

        consumer = asyncio.ensure_future(
            run_subscriber(bus, sub, handler, jitter=jitter)
        )
        for i in range(count):
            await bus.publish("t", i, publisher="p")
        sub.close()
        await consumer
        return handled, bus.failures, sub.poisoned

    handled, failures, poisoned = run(scenario())
    assert poisoned is True
    assert len(failures) == 1
    assert failures[0]["subscriber"] == "fragile"
    crash_payload = min(crash_at, count - 1)
    assert crash_payload not in handled
    # Everything handled before the crash arrived in order.
    assert handled == list(range(len(handled)))

"""Recalibration: the proposal → canary → commit state machine.

Unit half: the controller against a stub worker — proposal cadence,
shadow-trial accounting, commit/reject verdicts, cooldown and the
per-device commit cap, plus the control-plane bus events.

Applied half: a slow-drift fleet run where the attacked devices' score
distributions slide far enough that the drift monitor proposes new
thresholds, the canary trials pass, and the committed θ′ *flips the
attacked devices back under the false-positive budget* — the
recalibration-evasion scenario the adversarial corpus worries about,
executed end to end.  The conformance edge: devices the controller
never touched must keep digests bit-identical to the lockstep
reference, and the whole recalibrated run must stay shard-invariant.
"""

import dataclasses
import math

import pytest

from repro.serve import (
    DriftPolicy,
    DriftStatus,
    FleetService,
    RecalibrationController,
    RecalibrationPolicy,
    ScoredInterval,
)
from repro.serve.bus import EventBus

pytestmark = pytest.mark.bus


# ----------------------------------------------------------------------
# Stubs
# ----------------------------------------------------------------------
class StubDrift:
    def __init__(self):
        self.verdicts = {}
        self.resets = []

    def flag(self, device_id, suggested):
        self.verdicts[device_id] = DriftStatus(
            device_id=device_id, samples=99, observed_rate=0.5,
            expected_rate=0.01, drifted=True,
            suggested_threshold=suggested,
        )

    def status(self, device_id, theta, p_percent):
        return self.verdicts.get(
            device_id,
            DriftStatus(
                device_id=device_id, samples=99, observed_rate=0.0,
                expected_rate=0.01, drifted=False,
                suggested_threshold=None,
            ),
        )

    def reset(self, device_id):
        self.resets.append(device_id)
        self.verdicts.pop(device_id, None)


class StubWorker:
    p_percent = 1.0

    def __init__(self):
        self.drift = StubDrift()
        self.applied = []

    def apply_threshold(self, device_id, theta, interval_index=None):
        self.applied.append((device_id, theta, interval_index))


def scored(device_id, interval, density, theta=-100.0):
    return ScoredInterval(
        device_id=device_id, profile="baseline", interval_index=interval,
        log_density=density, theta=theta, flag="ok", alarm=False,
        truth=False,
    )


POLICY = RecalibrationPolicy(
    enabled=True, check_every=4, canary_intervals=3, max_canary_flags=1,
    cooldown=6,
)


class TestStateMachine:
    def test_proposal_waits_for_check_cadence(self):
        worker = StubWorker()
        controller = RecalibrationController(POLICY, worker)
        worker.drift.flag("dev", suggested=-200.0)
        for i in range(3):
            controller.on_scored(scored("dev", i, -50.0))
        assert controller.proposed == 0  # sample 4 is the first check
        controller.on_scored(scored("dev", 3, -50.0))
        assert controller.proposed == 1

    def test_clean_canary_commits_and_resets_drift(self):
        worker = StubWorker()
        controller = RecalibrationController(POLICY, worker)
        worker.drift.flag("dev", suggested=-200.0)
        for i in range(4):
            controller.on_scored(scored("dev", i, -50.0))
        # Trial: three shadow records, all above θ′=-200 → no flags.
        for i in range(4, 7):
            controller.on_scored(scored("dev", i, -50.0))
        assert controller.committed == 1
        assert worker.applied == [("dev", -200.0, 6)]
        assert worker.drift.resets == ["dev"]
        assert controller.stats() == {
            "proposed": 1, "committed": 1, "rejected": 0,
        }

    def test_overflagging_canary_rejects_with_cooldown(self):
        worker = StubWorker()
        controller = RecalibrationController(POLICY, worker)
        worker.drift.flag("dev", suggested=-40.0)
        for i in range(4):
            controller.on_scored(scored("dev", i, -50.0))
        # All three shadow records fall below θ′=-40 → 3 flags > 1.
        for i in range(4, 7):
            controller.on_scored(scored("dev", i, -50.0))
        assert controller.rejected == 1
        assert worker.applied == []
        assert worker.drift.resets == []
        # Cooldown: the next check at sample 8 is suppressed (cooldown
        # runs to sample 7 + 6 = 13), sample 16 is the next live check.
        for i in range(7, 15):
            controller.on_scored(scored("dev", i, -50.0))
        assert controller.proposed == 1
        controller.on_scored(scored("dev", 15, -50.0))
        assert controller.proposed == 2

    def test_commit_cap_stops_reproposals(self):
        worker = StubWorker()
        controller = RecalibrationController(POLICY, worker)
        worker.drift.flag("dev", suggested=-200.0)
        for i in range(7):
            controller.on_scored(scored("dev", i, -50.0))
        assert controller.committed == 1
        worker.drift.flag("dev", suggested=-300.0)  # drifts again
        for i in range(7, 30):
            controller.on_scored(scored("dev", i, -50.0))
        assert controller.proposed == 1  # max_commits_per_device=1

    def test_devices_have_independent_lanes(self):
        worker = StubWorker()
        controller = RecalibrationController(POLICY, worker)
        worker.drift.flag("a", suggested=-200.0)
        for i in range(7):
            controller.on_scored(scored("a", i, -50.0))
            controller.on_scored(scored("b", i, -50.0))
        assert controller.committed == 1
        assert [entry[0] for entry in worker.applied] == ["a"]

    def test_lifecycle_events_reach_the_bus(self):
        worker = StubWorker()
        bus = EventBus()
        topics = []
        bus.subscribe(
            "audit",
            ("recalibrate.proposed", "recalibrate.committed",
             "recalibrate.rejected"),
            mode="direct",
            handler=lambda event: topics.append(
                (event.topic, event.payload["device_id"])
            ),
        )
        controller = RecalibrationController(POLICY, worker, bus=bus)
        worker.drift.flag("dev", suggested=-200.0)
        for i in range(7):
            controller.on_scored(scored("dev", i, -50.0))
        assert topics == [
            ("recalibrate.proposed", "dev"),
            ("recalibrate.committed", "dev"),
        ]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RecalibrationPolicy(check_every=0)
        with pytest.raises(ValueError):
            RecalibrationPolicy(canary_intervals=0)
        with pytest.raises(ValueError):
            RecalibrationPolicy(max_canary_flags=-1)
        with pytest.raises(ValueError):
            RecalibrationPolicy(max_commits_per_device=0)


# ----------------------------------------------------------------------
# Applied: the slow-drift fleet
# ----------------------------------------------------------------------
RECAL = RecalibrationPolicy(
    enabled=True, check_every=8, canary_intervals=8, max_canary_flags=2,
    cooldown=8,
)


@pytest.fixture(scope="module")
def drift_config(base_config):
    """A fleet whose attacked devices drift past the policy trip while
    the benign ones stay inside it (min_excess tuned so a stray benign
    flag cannot trip a 32-sample window)."""
    return dataclasses.replace(
        base_config,
        intervals=64,
        keep_densities=True,
        drift=DriftPolicy(window=32, min_samples=16, min_excess=0.1),
    )


@pytest.fixture(scope="module")
def lockstep_reference(drift_config):
    return FleetService(drift_config).run()


@pytest.fixture(scope="module")
def recalibrated_report(drift_config):
    return FleetService(
        dataclasses.replace(
            drift_config, executor="async", recalibration=RECAL
        )
    ).run()


class TestAppliedRecalibration:
    def test_attacked_devices_commit_benign_do_not(
        self, recalibrated_report
    ):
        recalibrated = {
            d.device_id
            for d in recalibrated_report.device_reports
            if d.recalibrated
        }
        attacked = {
            d.device_id
            for d in recalibrated_report.device_reports
            if d.scenario is not None
        }
        assert recalibrated == attacked
        assert recalibrated_report.devices_recalibrated == len(attacked)
        stats = recalibrated_report.bus["recalibration"]
        assert stats["committed"] == len(attacked)
        assert stats["proposed"] >= stats["committed"]

    def test_poisoned_window_commit_flips_device_under_budget(
        self, recalibrated_report
    ):
        """The evasion endpoint: when the attack's scores have seeped
        into the drift window *before* the proposal, the recalibrated
        θ′ sits below the attack's score floor — post-commit the device
        flags at a rate back inside the canary budget.  A device whose
        trial ran on clean data instead keeps θ′ above the attack
        floor and still flags it (recalibration must not blind a
        clean-window device)."""
        poisoned_commits = 0
        for entry in recalibrated_report.device_reports:
            if not entry.recalibrated:
                continue
            assert entry.recalibrated_threshold is not None
            commit_at = entry.recalibrated_at_interval
            post = [
                density
                for i, density in enumerate(entry.log_densities)
                if i > commit_at and not math.isnan(density)
            ]
            post_flags = sum(
                density < entry.recalibrated_threshold for density in post
            )
            assert len(post) > 0
            if commit_at >= entry.inject_interval:
                poisoned_commits += 1
                assert post_flags <= RECAL.max_canary_flags
            else:
                assert post_flags > 0  # the later attack still flags
        assert poisoned_commits > 0  # the evasion case is exercised

    def test_recalibration_reduces_flagging(
        self, recalibrated_report, lockstep_reference
    ):
        """θ′ is a low quantile of a drifted window, so it always sits
        below the deployed θ — every recalibrated device flags at most
        as often as its un-recalibrated twin, and the fleet strictly
        less overall."""
        reference = {
            d.device_id: d for d in lockstep_reference.device_reports
        }
        recalibrated = [
            d for d in recalibrated_report.device_reports if d.recalibrated
        ]
        for entry in recalibrated:
            assert entry.flagged <= reference[entry.device_id].flagged
        assert sum(d.flagged for d in recalibrated) < sum(
            reference[d.device_id].flagged for d in recalibrated
        )

    def test_untouched_devices_keep_lockstep_digests(
        self, recalibrated_report, lockstep_reference
    ):
        reference = {
            d.device_id: d for d in lockstep_reference.device_reports
        }
        untouched = [
            d
            for d in recalibrated_report.device_reports
            if not d.recalibrated
        ]
        assert untouched  # the fleet has benign devices
        for entry in untouched:
            assert entry.digest == reference[entry.device_id].digest

    def test_recalibrated_run_is_shard_invariant(
        self, recalibrated_report, drift_config
    ):
        sharded = FleetService(
            dataclasses.replace(
                drift_config, executor="async", recalibration=RECAL,
                shards=2,
            )
        ).run()
        assert (
            sharded.canonical_dict() == recalibrated_report.canonical_dict()
        )

    def test_recalibration_rejected_under_lockstep(self, drift_config):
        with pytest.raises(ValueError, match="async"):
            dataclasses.replace(drift_config, recalibration=RECAL)

    def test_report_carries_recalibration_provenance(
        self, recalibrated_report
    ):
        entry = next(
            d for d in recalibrated_report.device_reports if d.recalibrated
        )
        payload = recalibrated_report.to_dict()["device_reports"]
        row = next(
            r for r in payload if r["device_id"] == entry.device_id
        )
        assert row["recalibrated"] is True
        assert row["recalibrated_threshold"] == entry.recalibrated_threshold
        assert row["recalibrated_at_interval"] == (
            entry.recalibrated_at_interval
        )

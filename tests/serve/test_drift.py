"""DriftMonitor: windowing, flag conditions, θ_p recalibration proposal."""

import numpy as np
import pytest

from repro.serve.drift import DriftMonitor, DriftPolicy


def feed(monitor, device, values):
    for value in values:
        monitor.observe(device, value)


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(window=0),
            dict(min_samples=0),
            dict(rate_factor=0.5),
            dict(min_excess=1.5),
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DriftPolicy(**kwargs)


class TestDriftVerdicts:
    def test_no_verdict_below_min_samples(self):
        monitor = DriftMonitor(DriftPolicy(min_samples=40))
        feed(monitor, "dev", [-10.0] * 10)
        status = monitor.status("dev", theta=-20.0, p_percent=1.0)
        assert not status.drifted
        assert status.observed_rate is None
        assert status.suggested_threshold is None
        assert status.samples == 10

    def test_healthy_device_not_flagged(self):
        monitor = DriftMonitor(DriftPolicy(min_samples=40))
        # 1% of intervals below theta: exactly the calibrated budget.
        values = [-10.0] * 99 + [-30.0]
        feed(monitor, "dev", values)
        status = monitor.status("dev", theta=-20.0, p_percent=1.0)
        assert not status.drifted
        assert status.observed_rate == pytest.approx(0.01)
        assert status.expected_rate == pytest.approx(0.01)

    def test_sustained_shift_flagged_with_recalibration(self):
        monitor = DriftMonitor(DriftPolicy(min_samples=40))
        # 20% of the window now scores below theta — 20x the budget.
        values = [-10.0] * 80 + [-30.0] * 20
        feed(monitor, "dev", values)
        status = monitor.status("dev", theta=-20.0, p_percent=1.0)
        assert status.drifted
        assert status.observed_rate == pytest.approx(0.20)
        expected_theta = float(np.quantile(np.asarray(values), 0.01))
        assert status.suggested_threshold == pytest.approx(expected_theta)
        # Recalibrated theta admits the shifted distribution.
        below = np.mean(np.asarray(values) < status.suggested_threshold)
        assert below <= 0.05

    def test_small_excess_within_factor_not_flagged(self):
        monitor = DriftMonitor(
            DriftPolicy(min_samples=40, rate_factor=3.0, min_excess=0.02)
        )
        # 2% observed vs 1% expected: above budget but under both the
        # 3x factor and the absolute +2% margin — a sampling blip.
        values = [-10.0] * 98 + [-30.0] * 2
        feed(monitor, "dev", values)
        status = monitor.status("dev", theta=-20.0, p_percent=1.0)
        assert not status.drifted

    def test_window_is_bounded(self):
        monitor = DriftMonitor(DriftPolicy(window=50, min_samples=10))
        # Old anomalous scores age out of the window.
        feed(monitor, "dev", [-30.0] * 50)
        feed(monitor, "dev", [-10.0] * 50)
        assert monitor.samples("dev") == 50
        status = monitor.status("dev", theta=-20.0, p_percent=1.0)
        assert status.observed_rate == 0.0
        assert not status.drifted

    def test_devices_tracked_independently(self):
        monitor = DriftMonitor(DriftPolicy(min_samples=10))
        feed(monitor, "bad", [-30.0] * 20)
        feed(monitor, "good", [-10.0] * 20)
        assert monitor.status("bad", theta=-20.0, p_percent=1.0).drifted
        assert not monitor.status("good", theta=-20.0, p_percent=1.0).drifted

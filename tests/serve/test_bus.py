"""EventBus unit suite: queue semantics, policies, poison, stall.

Everything here drives the bus primitives directly under
``asyncio.run`` — no fleet, no detectors — so each invariant is pinned
at the smallest surface that can violate it.  The fleet-level
counterparts live in test_bus_conformance.py / test_bus_chaos.py.
"""

import asyncio
import pickle

import pytest

from repro import faults
from repro.serve.bus import (
    BUS_POLICIES,
    BusStallError,
    Event,
    EventBus,
    SchedulingJitter,
    run_subscriber,
)

pytestmark = pytest.mark.bus


def run(coro):
    return asyncio.run(coro)


class TestSubscriptionBasics:
    def test_fifo_single_publisher(self):
        async def scenario():
            bus = EventBus()
            sub = bus.subscribe("tap", "t")
            for i in range(5):
                await bus.publish("t", i, publisher="p")
            return [(await sub.get()).payload for _ in range(5)]

        assert run(scenario()) == [0, 1, 2, 3, 4]

    def test_seq_numbers_per_publisher_topic(self):
        async def scenario():
            bus = EventBus()
            sub = bus.subscribe("tap", ("a", "b"))
            await bus.publish("a", "x", publisher="p1")
            await bus.publish("a", "y", publisher="p1")
            await bus.publish("a", "z", publisher="p2")
            await bus.publish("b", "w", publisher="p1")
            out = [await sub.get() for _ in range(4)]
            return [(e.publisher, e.topic, e.seq) for e in out]

        assert run(scenario()) == [
            ("p1", "a", 0), ("p1", "a", 1), ("p2", "a", 0), ("p1", "b", 0),
        ]

    def test_get_returns_none_after_close_and_drain(self):
        async def scenario():
            bus = EventBus()
            sub = bus.subscribe("tap", "t")
            await bus.publish("t", 1)
            sub.close()
            return [await sub.get(), await sub.get()]

        first, second = run(scenario())
        assert first.payload == 1
        assert second is None

    def test_get_batch_respects_limit_and_fifo(self):
        async def scenario():
            bus = EventBus()
            sub = bus.subscribe("tap", "t")
            for i in range(7):
                await bus.publish("t", i)
            first = await sub.get_batch(4)
            second = await sub.get_batch(4)
            return [e.payload for e in first], [e.payload for e in second]

        assert run(scenario()) == ([0, 1, 2, 3], [4, 5, 6])

    def test_publish_to_topic_without_subscribers_is_counted(self):
        async def scenario():
            bus = EventBus()
            assert await bus.publish("nobody", 1) is True
            return bus.stats()

        stats = run(scenario())
        assert stats["published"] == 1
        assert stats["delivered"] == 0

    def test_validation(self):
        bus = EventBus()
        with pytest.raises(ValueError, match="policy"):
            bus.subscribe("s", "t", policy="bogus")
        with pytest.raises(ValueError, match="capacity"):
            bus.subscribe("s", "t", capacity=0)
        with pytest.raises(ValueError, match="handler"):
            bus.subscribe("s", "t", mode="direct")
        with pytest.raises(ValueError, match="mode"):
            bus.subscribe("s", "t", mode="sideways")
        with pytest.raises(ValueError, match="stall_timeout"):
            EventBus(stall_timeout=0)


class TestBackpressurePolicies:
    def test_block_policy_loses_nothing(self):
        async def scenario():
            bus = EventBus()
            sub = bus.subscribe("tap", "t", capacity=1, policy="block")
            received = []

            async def produce():
                for i in range(10):
                    await bus.publish("t", i)
                sub.close()

            task = asyncio.ensure_future(produce())
            # A deliberately slow consumer (two loop turns per get):
            # the capacity-1 queue stays full long enough that the
            # producer's deferred put observes it and block-waits.
            while True:
                await asyncio.sleep(0)
                await asyncio.sleep(0)
                event = await sub.get()
                if event is None:
                    break
                received.append(event.payload)
            await task
            return received, sub.block_waits

        received, waits = run(scenario())
        assert received == list(range(10))
        assert waits > 0  # the full queue forced the publisher to wait

    def test_drop_oldest_evicts_exactly_the_oldest(self):
        async def scenario():
            bus = EventBus()
            evicted = []
            sub = bus.subscribe(
                "tap", "t", capacity=3, policy="drop-oldest",
                on_drop=lambda e: evicted.append(e.payload),
            )
            for i in range(8):
                await bus.publish("t", i)
            sub.close()
            kept = []
            while True:
                event = await sub.get()
                if event is None:
                    return evicted, kept
                kept.append(event.payload)

        evicted, kept = run(scenario())
        assert evicted == [0, 1, 2, 3, 4]  # the oldest, in order
        assert kept == [5, 6, 7]  # the newest survive

    def test_shed_discards_incoming_keeps_backlog(self):
        async def scenario():
            bus = EventBus()
            shed = []
            sub = bus.subscribe(
                "tap", "t", capacity=3, policy="shed",
                on_drop=lambda e: shed.append(e.payload),
            )
            for i in range(8):
                await bus.publish("t", i)
            sub.close()
            kept = []
            while True:
                event = await sub.get()
                if event is None:
                    return shed, kept
                kept.append(event.payload)

        shed, kept = run(scenario())
        assert kept == [0, 1, 2]  # queued data survives
        assert shed == [3, 4, 5, 6, 7]  # newest sacrificed
        assert set(BUS_POLICIES) == {"block", "drop-oldest", "shed"}

    def test_publish_sync_on_full_block_queue_forces_a_shed(self):
        bus = EventBus()
        sub = bus.subscribe("tap", "t", capacity=2, policy="block")
        for i in range(5):
            bus.publish_sync("t", i)
        assert sub.depth() == 2
        assert sub.shed == 3  # a sync publisher cannot wait
        assert bus.stats()["shed"] == 3

    def test_accounting_stats_balance(self):
        async def scenario():
            bus = EventBus()
            sub = bus.subscribe("tap", "t", capacity=4, policy="drop-oldest")
            for i in range(10):
                await bus.publish("t", i)
            drained = 0
            sub.close()
            while await sub.get() is not None:
                drained += 1
            return bus.stats(), drained

        stats, drained = run(scenario())
        assert stats["published"] == 10
        assert stats["delivered"] == drained == 4
        assert stats["dropped"] == 6
        assert stats["delivered"] + stats["dropped"] == stats["published"]


class TestStall:
    def test_blocked_publish_times_out_as_bus_stall(self):
        async def scenario():
            bus = EventBus(stall_timeout=0.05)
            bus.subscribe("dead", "t", capacity=1, policy="block")
            await bus.publish("t", 0)  # fills the queue
            await bus.publish("t", 1)  # nobody drains: must stall

        with pytest.raises(BusStallError) as excinfo:
            run(scenario())
        err = excinfo.value
        assert err.subscriber == "dead"
        assert err.topic == "t"
        assert err.timeout_s == pytest.approx(0.05)

    def test_stall_error_survives_pickling(self):
        # Shard children re-raise through a ProcessPoolExecutor, which
        # round-trips the exception through pickle.
        err = BusStallError("scoring", "interval.observed", 30.0)
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, BusStallError)
        assert clone.subscriber == "scoring"
        assert clone.topic == "interval.observed"
        assert clone.timeout_s == 30.0

    def test_no_watchdog_when_disabled(self):
        async def scenario():
            bus = EventBus(stall_timeout=None)
            sub = bus.subscribe("tap", "t", capacity=1, policy="block")
            await bus.publish("t", 0)

            async def drain_one():
                for _ in range(3):
                    await asyncio.sleep(0)
                await sub.get()

            task = asyncio.ensure_future(drain_one())
            await bus.publish("t", 1)  # waits for the drain, no stall
            await task
            return sub.depth()

        assert run(scenario()) == 1


class TestDirectAndPoison:
    def test_direct_handler_runs_inside_publish(self):
        async def scenario():
            bus = EventBus()
            seen = []
            bus.subscribe(
                "ctrl", "t", mode="direct", handler=lambda e: seen.append(e.payload)
            )
            await bus.publish("t", "x")
            return list(seen)

        assert run(scenario()) == ["x"]

    def test_crashed_direct_handler_poisons_not_raises(self):
        async def scenario():
            bus = EventBus()

            def boom(event):
                raise RuntimeError("handler died")

            sub = bus.subscribe("ctrl", "t", mode="direct", handler=boom)
            assert await bus.publish("t", "x") is True  # publish survives
            assert await bus.publish("t", "y") is True  # detached: no retry
            return bus.failures, sub.poisoned, bus.subscribers("t")

        failures, poisoned, listeners = run(scenario())
        assert poisoned is True
        assert listeners == []  # detached from the topic
        assert len(failures) == 1
        assert failures[0]["subscriber"] == "ctrl"
        assert "handler died" in failures[0]["error"]

    def test_run_subscriber_poisons_on_handler_crash(self):
        async def scenario():
            bus = EventBus()
            sub = bus.subscribe("tap", "t", capacity=8)

            def boom(event):
                raise ValueError("bad payload")

            task = asyncio.ensure_future(run_subscriber(bus, sub, boom))
            await bus.publish("t", 1)
            await task  # returns (degraded), does not hang or raise
            return bus.stats()["subscribers_poisoned"], sub.poisoned

        poisoned_count, poisoned = run(scenario())
        assert poisoned_count == 1
        assert poisoned is True

    def test_unsubscribe_stops_delivery(self):
        async def scenario():
            bus = EventBus()
            sub = bus.subscribe("tap", "t")
            await bus.publish("t", 1)
            bus.unsubscribe(sub)
            await bus.publish("t", 2)
            out = []
            while True:
                event = await sub.get()
                if event is None:
                    return out

                out.append(event.payload)

        assert run(scenario()) == [1]


class TestFaultGates:
    def test_publish_fault_retries_once_then_loses(self):
        # Probability 1.0 fires on both attempt tokens: event lost.
        plan = faults.FaultPlan(
            seed=3,
            sites={"bus.publish": faults.FaultSpec(probability=1.0, mode="raise")},
        )
        lost = []

        async def scenario():
            bus = EventBus()
            bus.on_publish_lost = lambda topic, payload, key: lost.append(key)
            sub = bus.subscribe("tap", "t")
            with faults.injected(plan):
                ok = await bus.publish("t", 1, key="dev-0@0")
            return ok, bus.stats(), sub.depth()

        ok, stats, depth = run(scenario())
        assert ok is False
        assert depth == 0
        assert stats["publish_lost"] == 1
        assert lost == ["dev-0@0"]

    def test_publish_fault_retry_can_recover(self):
        # Find a key where attempt #a0 fires but #a1 does not: the
        # retry recovers and nothing is lost.
        plan = faults.FaultPlan(
            seed=3,
            sites={"bus.publish": faults.FaultSpec(probability=0.5, mode="raise")},
        )
        key = next(
            k
            for k in (f"dev-0@{i}" for i in range(64))
            if plan.would_fire("bus.publish", f"t:{k}#a0")
            and not plan.would_fire("bus.publish", f"t:{k}#a1")
        )

        async def scenario():
            bus = EventBus()
            sub = bus.subscribe("tap", "t")
            with faults.injected(plan):
                ok = await bus.publish("t", 1, key=key)
            return ok, sub.depth(), bus.stats()["publish_lost"]

        ok, depth, publish_lost = run(scenario())
        assert ok is True
        assert depth == 1
        assert publish_lost == 0

    def test_deliver_fault_loses_for_that_subscription_only(self):
        plan = faults.FaultPlan(
            seed=3,
            sites={
                "bus.deliver": faults.FaultSpec(
                    probability=1.0, mode="raise", match="flaky"
                )
            },
        )
        dropped = []

        async def scenario():
            bus = EventBus()
            flaky = bus.subscribe(
                "flaky", "t", on_drop=lambda e: dropped.append(e.payload)
            )
            healthy = bus.subscribe("healthy", "t")
            with faults.injected(plan):
                await bus.publish("t", 7)
            return flaky.depth(), healthy.depth(), bus.stats()

        flaky_depth, healthy_depth, stats = run(scenario())
        assert flaky_depth == 0
        assert healthy_depth == 1
        assert stats["deliver_faults"] == 1
        assert dropped == [7]


class TestSchedulingJitter:
    def test_same_seed_same_interleaving(self):
        async def scenario(seed):
            jitter = SchedulingJitter(seed, amplitude=3)
            order = []

            async def actor(name):
                for i in range(10):
                    await jitter.point(name)
                    order.append((name, i))

            await asyncio.gather(actor("a"), actor("b"))
            return order

        assert run(scenario(5)) == run(scenario(5))

    def test_amplitude_zero_never_yields(self):
        async def scenario():
            jitter = SchedulingJitter(1, amplitude=0)
            await jitter.point("x")
            return True

        assert run(scenario()) is True

    def test_event_dataclass_is_frozen(self):
        event = Event(topic="t", payload=1, publisher="p", seq=0)
        with pytest.raises(Exception):
            event.seq = 1

"""FleetService: the serial ≡ sharded contract and the report schema."""

import json

import pytest

from repro import faults
from repro.serve import FleetReport, FleetService, ServeConfig
from repro.serve.report import device_digest


@pytest.fixture(scope="module")
def serial_report(base_config):
    return FleetService(base_config).run()


class TestShardInvariance:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_canonical_report_bit_identical(
        self, serial_report, config_factory, shards
    ):
        """--shards 1 and --shards K on the same seed agree bitwise:
        same per-device digests, same fleet digest, same counts."""
        sharded = FleetService(config_factory(shards=shards)).run()
        assert sharded.canonical_dict() == serial_report.canonical_dict()

    def test_digests_cover_every_device(self, serial_report, base_config):
        sequences = serial_report.verdict_sequences
        assert len(sequences) == base_config.devices
        assert all(len(d) == 64 for d in sequences.values())

    def test_shard_partition_is_modular(self, config_factory):
        report = FleetService(config_factory(shards=2)).run()
        for dev in report.device_reports:
            assert dev.shard == dev.device_index % 2


class TestAccounting:
    def test_nothing_lost_under_default_drain(self, serial_report, base_config):
        assert serial_report.emitted == (
            base_config.devices * base_config.intervals
        )
        assert serial_report.dropped == 0
        assert serial_report.emitted == (
            serial_report.scored + serial_report.skipped
        )

    def test_drop_oldest_accounting_invariant(self, config_factory):
        report = FleetService(
            config_factory(
                policy="drop-oldest", queue_capacity=8, batch_size=4,
                drain_per_step=2,
            )
        ).run()
        assert report.dropped > 0
        assert report.emitted == (
            report.scored + report.skipped + report.dropped
        )
        per_device = sum(d.dropped for d in report.device_reports)
        assert per_device == report.dropped

    def test_block_policy_never_drops(self, config_factory):
        report = FleetService(
            config_factory(
                policy="block", queue_capacity=8, batch_size=4,
                drain_per_step=2,
            )
        ).run()
        assert report.dropped == 0
        assert report.block_stalls > 0
        assert report.emitted == report.scored + report.skipped


class TestFaultDegradation:
    def test_serve_score_faults_degrade_and_stay_shard_invariant(
        self, config_factory
    ):
        plan = faults.FaultPlan(
            seed=5,
            sites={
                "serve.score": faults.FaultSpec(
                    probability=0.3, mode="corrupt"
                )
            },
        )
        serial = FleetService(config_factory(), fault_plan=plan).run()
        sharded = FleetService(
            config_factory(shards=2), fault_plan=plan
        ).run()
        assert serial.skipped > 0
        # Fault decisions hash (seed, site, device@interval): the same
        # records degrade regardless of shard placement.
        assert sharded.canonical_dict() == serial.canonical_dict()


class TestAttackDetection:
    def test_attacked_devices_alarm(self, config_factory):
        """With a long enough window the attacked devices alarm and
        report finite detection latency; benign devices stay quiet."""
        # consecutive_for_alarm=1: at this tiny training scale the
        # post-attack density drop is intermittent (the dead task's
        # intervals interleave with still-normal ones), so alarm on
        # the first flagged interval; streak semantics are unit-tested
        # in test_worker.py.
        report = FleetService(
            config_factory(
                devices=2, intervals=24, attacked_devices=1,
                attack_scenarios=("shellcode",), profiles=("baseline",),
                seed=4, consecutive_for_alarm=1,
            )
        ).run()
        attacked = [d for d in report.device_reports if d.scenario]
        benign = [d for d in report.device_reports if not d.scenario]
        assert len(attacked) == 1 and len(benign) == 1
        assert attacked[0].alarms >= 1
        assert attacked[0].detection_latency is not None
        assert attacked[0].detection_latency <= 6
        assert benign[0].alarms == 0
        assert report.attacked_devices_alarmed == 1


class TestAdversarialCorpusShardInvariance:
    """The four adversarial scenarios ride the same serial ≡ sharded
    contract as the paper's three — stealth payloads (periodic pumps,
    service shadows) must not leak scheduler state across shards."""

    CORPUS = ("interrupt-storm", "mimicry", "slow-drift", "smm-shadow")

    @pytest.fixture(scope="class")
    def corpus_serial(self, base_config):
        import dataclasses

        config = dataclasses.replace(
            base_config,
            devices=4,
            attacked_devices=4,
            intervals=10,
            attack_scenarios=self.CORPUS,
        )
        return FleetService(config).run()

    def test_every_adversarial_scenario_is_injected(self, corpus_serial):
        scenarios = sorted(
            d.scenario for d in corpus_serial.device_reports if d.scenario
        )
        assert scenarios == sorted(self.CORPUS)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_digests_bit_identical(
        self, corpus_serial, config_factory, shards
    ):
        sharded = FleetService(
            config_factory(
                devices=4,
                attacked_devices=4,
                intervals=10,
                attack_scenarios=self.CORPUS,
                shards=shards,
            )
        ).run()
        assert sharded.canonical_dict() == corpus_serial.canonical_dict()

    def test_truth_windows_are_labelled(self, corpus_serial):
        from repro.pipeline.stages import scenario_reversible

        for dev in corpus_serial.device_reports:
            assert dev.scenario in self.CORPUS
            # All four adversarial payloads are reversible, so every
            # stream carries both anomalous and benign truth labels.
            assert scenario_reversible(dev.scenario)
            assert dev.attack_intervals > 0
            assert dev.benign_intervals > 0


class TestReportSchema:
    def test_json_round_trip(self, serial_report, tmp_path):
        path = tmp_path / "fleet.json"
        serial_report.write(path)
        loaded = FleetReport.load(path)
        assert loaded.to_dict() == serial_report.to_dict()
        assert loaded.fleet_digest == serial_report.fleet_digest

    def test_unsupported_schema_rejected(self, serial_report):
        payload = serial_report.to_dict()
        payload["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            FleetReport.from_dict(payload)

    def test_report_is_json_serializable(self, serial_report):
        json.dumps(serial_report.to_dict())

    def test_device_digest_sensitive_to_everything(self):
        base = device_digest([0, 1], [-1.5, -2.5], ["ok", "ok"])
        assert device_digest([0, 2], [-1.5, -2.5], ["ok", "ok"]) != base
        assert device_digest([0, 1], [-1.5, -2.6], ["ok", "ok"]) != base
        assert (
            device_digest([0, 1], [-1.5, -2.5], ["ok", "anomalous"]) != base
        )

    def test_rates(self, serial_report):
        for dev in serial_report.device_reports:
            if dev.benign_intervals:
                assert 0.0 <= dev.false_positive_rate <= 1.0
            if dev.attack_intervals:
                assert 0.0 <= dev.detection_rate <= 1.0


class TestServeConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(devices=0),
            dict(devices=2, shards=3),
            dict(shards=0),
            dict(intervals=0),
            dict(policy="bogus"),
            dict(consecutive_for_alarm=0),
            dict(p_percent=0.0),
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)

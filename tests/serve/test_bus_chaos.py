"""Chaos suite: the fleet under injected bus faults.

Each campaign runs the async executor with a seeded
:class:`~repro.faults.FaultPlan` naming the bus's injection sites
(``bus.publish``, ``bus.deliver``, ``subscriber.handle``) and asserts
the degradation contract:

* fault decisions are pure in ``(seed, site, token)`` and the tokens
  are shard-invariant (``device@interval``), so a faulted fleet is
  still **bit-identical across shard counts**;
* every record the simulator emits still lands in exactly one of
  scored / skipped / dropped — losses are accounted, never silent;
* a poisoned subscriber produces a failures-manifest record and a
  degraded (not deadlocked, not crashed) run.
"""

import pytest

from repro import faults
from repro.serve import FleetService, health_summary


pytestmark = pytest.mark.bus


def _plan(**sites):
    return faults.FaultPlan(
        seed=5,
        sites={
            site: faults.FaultSpec(**spec) for site, spec in sites.items()
        },
    )


def _assert_ledger(report):
    assert report.emitted == report.scored + report.skipped + report.dropped
    per_device = sum(d.dropped for d in report.device_reports)
    assert per_device == report.dropped


class TestBusFaultCampaign:
    @pytest.mark.parametrize(
        "plan",
        [
            _plan(**{"bus.publish": dict(probability=0.4, mode="raise")}),
            _plan(**{"bus.deliver": dict(probability=0.4, mode="raise",
                                         match="scoring")}),
            _plan(**{
                "bus.publish": dict(probability=0.2, mode="raise"),
                "bus.deliver": dict(probability=0.2, mode="raise",
                                    match="scoring"),
                "serve.score": dict(probability=0.2, mode="corrupt"),
            }),
        ],
        ids=["publish-loss", "deliver-loss", "combined"],
    )
    def test_faulted_fleet_is_shard_invariant(self, config_factory, plan):
        reference = FleetService(
            config_factory(executor="async"), fault_plan=plan
        ).run()
        _assert_ledger(reference)
        sharded = FleetService(
            config_factory(executor="async", shards=2), fault_plan=plan
        ).run()
        _assert_ledger(sharded)
        assert sharded.canonical_dict() == reference.canonical_dict()

    def test_publish_loss_is_charged_as_dropped(self, config_factory):
        plan = _plan(**{"bus.publish": dict(probability=0.4, mode="raise")})
        report = FleetService(
            config_factory(executor="async"), fault_plan=plan
        ).run()
        assert report.dropped > 0  # the campaign actually fired
        # publish_lost counts every topic (a lost interval.scored copy
        # is a telemetry casualty, not a data-plane one); only lost
        # interval.observed records are charged to the device ledger.
        assert report.bus["publish_lost"] >= report.dropped
        _assert_ledger(report)

    def test_deliver_loss_routes_to_on_drop(self, config_factory):
        plan = _plan(**{
            "bus.deliver": dict(probability=0.4, mode="raise",
                                match="scoring"),
        })
        report = FleetService(
            config_factory(executor="async"), fault_plan=plan
        ).run()
        assert report.bus["deliver_faults"] > 0
        assert report.dropped == report.bus["deliver_faults"]
        _assert_ledger(report)

    def test_retry_absorbs_low_probability_faults(self, config_factory):
        # Every bus gate retries once under an attempt-suffixed token:
        # with firing probability p, loss needs both attempts to fire
        # (~p²).  At p=0.05 over a 32-record run the double-fire is
        # vanishingly unlikely — the retry absorbs every single fault.
        plan = _plan(**{"bus.publish": dict(probability=0.05, mode="raise")})
        report = FleetService(
            config_factory(executor="async"), fault_plan=plan
        ).run()
        assert report.dropped == 0
        assert report.bus["publish_lost"] == 0
        _assert_ledger(report)


class TestPoisonedSubscriber:
    def test_poisoned_reporting_lands_in_failures_manifest(
        self, config_factory
    ):
        plan = _plan(**{
            "subscriber.handle": dict(probability=1.0, mode="raise",
                                      match="reporting"),
        })
        report = FleetService(
            config_factory(executor="async"), fault_plan=plan
        ).run()
        # The data plane survived: everything still scored.
        assert report.scored == report.emitted
        failures = report.bus["failures"]
        assert len(failures) == 1
        assert failures[0]["subscriber"] == "reporting"
        assert "FaultError" in failures[0]["error"]
        assert report.bus["subscribers_poisoned"] == 1

    def test_poisoned_subscriber_degrades_health(self, config_factory):
        plan = _plan(**{
            "subscriber.handle": dict(probability=1.0, mode="raise",
                                      match="reporting"),
        })
        report = FleetService(
            config_factory(executor="async"), fault_plan=plan
        ).run()
        summary = health_summary(report)
        assert summary["ready"] is False
        assert summary["status"] == "degraded"
        bus_check = next(
            c for c in summary["checks"] if c["name"] == "bus"
        )
        assert bus_check["ok"] is False

    def test_poisoned_scoring_still_produces_a_report(self, config_factory):
        # The scoring subscriber itself dies mid-run: the harshest
        # case.  Unscored records are not silently lost — they simply
        # never reach the worker — and the run ends degraded, with the
        # crash attributed on the manifest, instead of deadlocking the
        # ingestion loop on a dead queue.
        plan = _plan(**{
            "subscriber.handle": dict(probability=1.0, mode="raise",
                                      match="scoring"),
        })
        report = FleetService(
            config_factory(executor="async"), fault_plan=plan
        ).run()
        assert report.scored == 0
        failures = report.bus["failures"]
        assert len(failures) == 1
        assert failures[0]["subscriber"] == "scoring"
        assert health_summary(report)["ready"] is False

    def test_healthy_run_has_empty_manifest(self, config_factory):
        report = FleetService(config_factory(executor="async")).run()
        assert report.bus["failures"] == []
        assert report.bus["subscribers_poisoned"] == 0
        assert health_summary(report)["ready"] is True

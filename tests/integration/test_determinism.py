"""Whole-stack reproducibility: identical seeds, identical results."""

import numpy as np

from repro.attacks import SyscallHijackRootkit
from repro.learn.detector import MhmDetector
from repro.pipeline.scenario import ScenarioRunner
from repro.sim.platform import Platform, PlatformConfig


class TestDeterminism:
    def test_scenario_bitwise_reproducible(self):
        results = []
        for _ in range(2):
            platform = Platform(PlatformConfig(seed=77))
            runner = ScenarioRunner(platform)
            result = runner.run(
                SyscallHijackRootkit(), pre_intervals=20, attack_intervals=20
            )
            results.append(result.series.matrix())
        np.testing.assert_array_equal(results[0], results[1])

    def test_detector_training_reproducible(self):
        training = Platform(PlatformConfig(seed=78)).collect_intervals(120)
        scores = []
        for _ in range(2):
            detector = MhmDetector(em_restarts=2, seed=5).fit(training)
            scores.append(detector.score_series(training))
        np.testing.assert_allclose(scores[0], scores[1], rtol=1e-12)

    def test_full_pipeline_reproducible(self):
        def run_once():
            config = PlatformConfig(seed=79)
            training = Platform(config).collect_intervals(100)
            detector = MhmDetector(em_restarts=2, seed=1).fit(training)
            platform = Platform(config.with_seed(80))
            result = ScenarioRunner(platform).run(
                SyscallHijackRootkit(), pre_intervals=10, attack_intervals=10
            )
            return detector.log10_series(result.series)

        np.testing.assert_allclose(run_once(), run_once(), rtol=1e-12)

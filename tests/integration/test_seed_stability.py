"""Seed stability: two fresh processes produce identical golden digests.

Flake hardening for the whole determinism story: hypothesis profiles
pin example generation, but the pipeline itself must also be free of
hidden process-level state (hash randomization, import order, BLAS
thread scheduling) that could make "the same seed" mean different
things in different runs.  This test executes the golden job in two
*fresh* interpreter processes — separate memory spaces, separate numpy
initialisation — and asserts their end-to-end fingerprints (a sha256
over detector arrays, the scored density series and every verdict) are
identical, and match the committed golden fixture.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

FIXTURES = pathlib.Path(__file__).parent.parent / "fixtures"
GOLDEN_PATH = FIXTURES / "golden_shellcode_tiny.json"

#: Runs the golden job and prints its fingerprint — executed in a
#: subprocess so each run gets a fresh interpreter.
_SCRIPT = """
from tests.pipeline.test_golden import GOLDEN_JOB
from repro.pipeline.runner import run_job
print(run_job(GOLDEN_JOB, use_cache=False).fingerprint())
"""


def _fresh_run_fingerprint(extra_env: dict) -> str:
    import os

    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    env.update(extra_env)
    repo_root = pathlib.Path(__file__).parent.parent.parent
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        cwd=repo_root,
        check=True,
    )
    return result.stdout.strip().splitlines()[-1]


def test_two_fresh_runs_produce_identical_digests():
    # Different PYTHONHASHSEED per run: the pipeline must not depend
    # on dict/string hashing order anywhere.
    first = _fresh_run_fingerprint({"PYTHONHASHSEED": "1"})
    second = _fresh_run_fingerprint({"PYTHONHASHSEED": "2"})
    assert first == second
    assert len(first) == 64


def test_fresh_run_matches_committed_golden_fixture():
    committed = json.loads(GOLDEN_PATH.read_text())["fingerprint"]
    assert _fresh_run_fingerprint({"PYTHONHASHSEED": "3"}) == committed

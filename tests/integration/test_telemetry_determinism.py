"""Telemetry determinism: two fresh `repro serve` runs match exactly.

Satellite (c) of the fleet-telemetry PR: logs and traces are stamped
with *simulated* time only and trace ids derive from
``(seed, device, interval)``, so two serve runs in fresh interpreters
— even under different hash seeds — must produce identical trace-id
sets, identical span trees and identical per-device digests.  Any
wall-clock or hash-order leak into the telemetry path breaks this.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).parent.parent.parent

SERVE_ARGS = [
    "serve",
    "--devices", "3",
    "--shards", "1",
    "--intervals", "6",
    "--seed", "2015",
    "--attacks", "1",
    "--train-runs", "1",
    "--train-intervals", "40",
    "--validation", "40",
]


def _fresh_serve(out_dir: pathlib.Path, cache_dir: pathlib.Path, hashseed: str):
    """Run the CLI in a fresh interpreter; return its telemetry files."""
    out_dir.mkdir()
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env["PYTHONHASHSEED"] = hashseed
    argv = SERVE_ARGS + [
        "--cache-dir", str(cache_dir),
        "--report-out", str(out_dir / "report.json"),
        "--trace", str(out_dir / "trace.json"),
        "--metrics-out", str(out_dir / "metrics.json"),
        "--log", str(out_dir / "serve.jsonl"),
        "--health-out", str(out_dir / "health.json"),
    ]
    subprocess.run(
        [sys.executable, "-m", "repro.cli"] + argv,
        capture_output=True, text=True, env=env, cwd=REPO_ROOT, check=True,
    )
    return {
        "report": json.loads((out_dir / "report.json").read_text()),
        "trace": json.loads((out_dir / "trace.json").read_text()),
        "log": (out_dir / "serve.jsonl").read_text(),
        "health": json.loads((out_dir / "health.json").read_text()),
    }


@pytest.fixture(scope="module")
def two_fresh_runs(tmp_path_factory):
    cache = tmp_path_factory.mktemp("cache")
    root = tmp_path_factory.mktemp("runs")
    return (
        _fresh_serve(root / "a", cache, hashseed="1"),
        _fresh_serve(root / "b", cache, hashseed="2"),
    )


def _span_tree(trace: dict):
    """(name, trace_id, span_id, parent_id) tuples for traced events."""
    spans = set()
    for event in trace.get("traceEvents", trace.get("events", [])):
        args = event.get("args") or {}
        if "trace_id" in args:
            spans.add((
                event.get("name"),
                args["trace_id"],
                args.get("span_id"),
                args.get("parent_id"),
            ))
    return spans


def test_device_digests_identical(two_fresh_runs):
    first, second = two_fresh_runs
    digests = lambda run: {
        d["device_id"]: d["digest"] for d in run["report"]["device_reports"]
    }
    assert digests(first) == digests(second)
    assert first["report"]["fleet_digest"] == second["report"]["fleet_digest"]


def test_trace_ids_and_span_trees_identical(two_fresh_runs):
    first, second = two_fresh_runs
    tree = _span_tree(first["trace"])
    assert tree  # traced spans actually exist
    assert tree == _span_tree(second["trace"])


def test_log_streams_identical(two_fresh_runs):
    # cache_hits legitimately differs between a cold and a warm cache;
    # everything else in the stream must match record-for-record.
    def records(run):
        out = []
        for line in run["log"].splitlines():
            record = json.loads(line)
            record.get("fields", {}).pop("cache_hits", None)
            out.append(record)
        return out

    first, second = two_fresh_runs
    assert records(first)  # non-empty
    assert records(first) == records(second)


def test_both_runs_report_ready(two_fresh_runs):
    for run in two_fresh_runs:
        assert run["health"]["ready"] is True

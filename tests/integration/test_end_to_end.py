"""End-to-end reproduction checks (quick scale).

These tests assert the *shape* claims of the paper's evaluation
(Section 5.3) on the reduced QUICK_SCALE protocol; the full-scale
numbers live in the benchmarks.
"""

import numpy as np
import pytest

from repro.learn.baselines import TrafficVolumeDetector
from repro.learn.metrics import roc_auc_from_scores
from repro.pipeline.experiments import (
    run_app_launch_experiment,
    run_rootkit_experiment,
    run_shellcode_experiment,
)


@pytest.fixture(scope="module")
def app_launch(quick_artifacts):
    return run_app_launch_experiment(quick_artifacts)


@pytest.fixture(scope="module")
def shellcode(quick_artifacts):
    return run_shellcode_experiment(quick_artifacts)


@pytest.fixture(scope="module")
def rootkit(quick_artifacts):
    return run_rootkit_experiment(quick_artifacts)


class TestScenario1AppLaunch:
    """Figure 7: qsort launched and later exited."""

    def test_low_false_positives_before_attack(self, app_launch):
        assert app_launch.pre_attack_fpr(0.5) <= 0.02
        assert app_launch.pre_attack_fpr(1.0) <= 0.05

    def test_densities_drop_after_launch(self, app_launch):
        densities = app_launch.log10_densities
        pre = densities[: app_launch.scenario.attack_interval]
        active = densities[app_launch.ground_truth]
        assert np.median(active) < np.median(pre) - 5

    def test_majority_of_active_intervals_flagged(self, app_launch):
        assert app_launch.attack_detection_rate(1.0) >= 0.35

    def test_detected_quickly(self, app_launch):
        assert 0 <= app_launch.detection_latency_intervals(1.0) <= 5

    def test_recovery_after_exit(self, app_launch):
        """Densities return toward the normal band once qsort exits."""
        assert app_launch.post_revert_fpr(1.0) <= 0.35
        densities = app_launch.log10_densities
        stop = app_launch.scenario.revert_interval
        post = densities[stop + 3 :]
        active = densities[app_launch.ground_truth]
        assert np.median(post) > np.median(active) + 3

    def test_scores_separate_by_auc(self, app_launch):
        auc = roc_auc_from_scores(
            -app_launch.log10_densities, app_launch.ground_truth
        )
        assert auc >= 0.80


class TestScenario2Shellcode:
    """Figure 8: ASLR-disabling shellcode kills bitcount."""

    def test_low_false_positives_before_attack(self, shellcode):
        assert shellcode.pre_attack_fpr(1.0) <= 0.05

    def test_persistent_density_drop(self, shellcode):
        densities = shellcode.log10_densities
        start = shellcode.scenario.attack_interval
        pre_median = np.median(densities[:start])
        # The host is gone for good; every post-attack window stays low.
        for begin in range(start, len(densities) - 10, 10):
            window = densities[begin : begin + 10]
            assert np.median(window) < pre_median - 3

    def test_majority_flagged(self, shellcode):
        assert shellcode.attack_detection_rate(1.0) >= 0.5

    def test_detected_immediately(self, shellcode):
        assert 0 <= shellcode.detection_latency_intervals(1.0) <= 2


class TestScenario3Rootkit:
    """Figures 9 and 10: LKM hijacks the read syscall."""

    def test_load_interval_flagged_by_mhm(self, rootkit):
        load = rootkit.scenario.attack_interval
        assert rootkit.flags(1.0)[load] or rootkit.flags(1.0)[load + 1]

    def test_load_spike_in_traffic_volume(self, rootkit):
        volumes = rootkit.traffic_volumes()
        load = rootkit.scenario.attack_interval
        assert volumes[load] > 3 * np.median(volumes)

    def test_post_hijack_traffic_volume_looks_normal(
        self, rootkit, quick_artifacts
    ):
        """Figure 9's point: the volume baseline cannot see the hijack."""
        baseline = TrafficVolumeDetector(p_percent=0.5).fit(
            quick_artifacts.data.training
        )
        flags = baseline.classify_series(rootkit.scenario.series)
        post = flags[rootkit.scenario.attack_interval + 2 :]
        assert post.mean() <= 0.02

    def test_mhm_detector_sees_intermittent_drift(self, rootkit):
        """Figure 10: 'somewhat low probability densities, though not
        always statistically distinguishable'."""
        rate = rootkit.attack_detection_rate(1.0)
        assert 0.03 <= rate <= 0.8
        densities = rootkit.log10_densities
        start = rootkit.scenario.attack_interval
        assert np.median(densities[start + 2 :]) <= np.median(densities[:start])

    def test_mhm_beats_volume_after_load(self, rootkit, quick_artifacts):
        baseline = TrafficVolumeDetector(p_percent=1.0).fit(
            quick_artifacts.data.training
        )
        start = rootkit.scenario.attack_interval
        volume_hits = baseline.classify_series(rootkit.scenario.series)[
            start + 2 :
        ].sum()
        mhm_hits = rootkit.flags(1.0)[start + 2 :].sum()
        assert mhm_hits > volume_hits


class TestCrossScenarioConsistency:
    def test_pre_attack_behaviour_consistent(self, app_launch, shellcode):
        """Both scenarios boot the same seed: identical normal prefixes
        must score identically."""
        n = min(
            app_launch.scenario.attack_interval, shellcode.scenario.attack_interval
        )
        np.testing.assert_allclose(
            app_launch.log10_densities[:n], shellcode.log10_densities[:n]
        )

    def test_thresholds_shared(self, app_launch, shellcode, rootkit):
        assert (
            app_launch.log10_thresholds
            == shellcode.log10_thresholds
            == rootkit.log10_thresholds
        )

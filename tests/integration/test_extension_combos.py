"""Cross-extension integration: RTOS + attacks, SMP + online monitoring."""

import numpy as np
import pytest

from repro.attacks import ShellcodeAttack, SyscallHijackRootkit
from repro.learn.detector import MhmDetector
from repro.pipeline.monitoring import OnlineMonitor
from repro.sim.platform import Platform, PlatformConfig
from repro.sim.smp import partition_tasks
from repro.sim.workloads.mibench import paper_taskset
from repro.sim.workloads.rtos import rtos_config


class TestRtosWithAttacks:
    @pytest.fixture(scope="class")
    def rtos_detector(self):
        config = rtos_config(seed=301)
        training = Platform(config).collect_intervals(200)
        validation = Platform(rtos_config(seed=302)).collect_intervals(150)
        return config, MhmDetector(em_restarts=2, seed=0).fit(training, validation)

    def test_shellcode_detected_on_rtos(self, rtos_detector):
        config, detector = rtos_detector
        platform = Platform(rtos_config(seed=303))
        platform.run_intervals(20)
        ShellcodeAttack(host="sensor_fusion").inject(platform)
        attacked = platform.collect_intervals(40)
        assert detector.classify_series(attacked, 1.0).mean() >= 0.5

    def test_rootkit_load_detected_on_rtos(self, rtos_detector):
        config, detector = rtos_detector
        platform = Platform(rtos_config(seed=304))
        platform.run_intervals(20)
        SyscallHijackRootkit().inject(platform)
        window = platform.collect_intervals(3)
        assert detector.classify_series(window, 1.0).any()

    def test_rtos_normal_fpr_low(self, rtos_detector):
        config, detector = rtos_detector
        platform = Platform(rtos_config(seed=305))
        normal = platform.collect_intervals(80)
        assert detector.classify_series(normal, 1.0).mean() <= 0.08


class TestSmpOnlineMonitoring:
    def test_online_alarm_on_smp_platform(self):
        tasks = tuple(partition_tasks(paper_taskset(), 2))
        config = PlatformConfig(seed=311, monitored_cores=2, tasks=tasks)
        training = Platform(config).collect_intervals(200)
        validation = Platform(config.with_seed(312)).collect_intervals(150)
        detector = MhmDetector(em_restarts=2, seed=0).fit(training, validation)

        platform = Platform(config.with_seed(313))
        monitor = OnlineMonitor(
            platform, detector, p_percent=1.0, consecutive_for_alarm=2
        )
        quiet = monitor.monitor(50)
        assert quiet.flag_rate <= 0.1

        # Attack a task living on the second core.
        victim = next(t.name for t in tasks if t.core == 1)
        ShellcodeAttack(host=victim).inject(platform)
        noisy = monitor.monitor(50)
        assert noisy.alarms
        assert noisy.flagged >= 20


class TestTemporalOnRtos:
    def test_phase_structure_stronger_on_rtos(self):
        """Harmonic RTOS schedules have crisper component sequences:
        the Markov chain's transitions are more deterministic."""
        from repro.learn.temporal import TemporalDetector

        def transition_entropy(config_factory):
            training = Platform(config_factory(601)).collect_intervals(250)
            validation = Platform(config_factory(602)).collect_intervals(150)
            detector = MhmDetector(em_restarts=2, seed=0).fit(training, validation)
            temporal = TemporalDetector(detector).fit(training, validation)
            matrix = temporal.transitions.transition_matrix_
            row_entropy = -(matrix * np.log(matrix)).sum(axis=1)
            return float(row_entropy.mean())

        rtos_entropy = transition_entropy(lambda s: rtos_config(seed=s))
        linux_entropy = transition_entropy(lambda s: PlatformConfig(seed=s))
        assert rtos_entropy <= linux_entropy + 0.15

"""Integration checks for the Memometer placement ablation (Section 5.5)."""

import numpy as np
import pytest

from repro.learn.detector import MhmDetector
from repro.sim.platform import Platform, PlatformConfig


def train_and_score(placement, train_intervals=150, test_intervals=60):
    """Train a small detector at a placement; return (normal FPR, spike flag)."""
    config = PlatformConfig(seed=41, placement=placement)
    training = Platform(config).collect_intervals(train_intervals)
    validation = Platform(config.with_seed(42)).collect_intervals(train_intervals)
    detector = MhmDetector(em_restarts=2, seed=0).fit(training, validation)

    test_platform = Platform(config.with_seed(43))
    normal = test_platform.collect_intervals(test_intervals)
    fpr = detector.classify_series(normal, 1.0).mean()
    return detector, test_platform, fpr


class TestPlacementAblation:
    def test_pre_l1_baseline_works(self):
        _, _, fpr = train_and_score("pre-l1")
        assert fpr <= 0.10

    def test_post_l1_still_usable(self):
        """The paper's conjecture: accuracy drop 'would not be
        significant' one level down."""
        detector, platform, fpr = train_and_score("post-l1")
        assert fpr <= 0.25
        # A gross anomaly is still caught post-L1.
        from repro.attacks import SyscallHijackRootkit

        SyscallHijackRootkit().inject(platform)
        spike = platform.collect_intervals(2)
        assert detector.classify_series(spike, 1.0).any()

    def test_information_loss_monotone_in_depth(self):
        """Counts shrink as the snoop point moves down the hierarchy."""
        volumes = {}
        for placement in ("pre-l1", "post-l1", "post-l2"):
            platform = Platform(PlatformConfig(seed=44, placement=placement))
            volumes[placement] = (
                platform.collect_intervals(30).traffic_volumes().sum()
            )
        assert volumes["pre-l1"] > volumes["post-l1"] > volumes["post-l2"]

    def test_weight_information_destroyed_by_cache(self):
        """Pre-L1 sees repetition counts; post-L1 sees at most one
        access per line per burst."""
        pre = Platform(PlatformConfig(seed=45, placement="pre-l1"))
        post = Platform(PlatformConfig(seed=45, placement="post-l1"))
        pre_map = pre.collect_intervals(5).matrix()
        post_map = post.collect_intervals(5).matrix()
        assert pre_map.max() > 10 * post_map.max()

"""Dual-region monitoring: closing the rootkit's blind spot.

The paper's assumption (iv): "our detection mechanism cannot detect
anomalies that access memory segments outside the region under
monitoring" — which is precisely where the Scenario 3 rootkit's
wrapper hides (module space).  But the Memometer is just control
registers + counters: a second instance pointed at the ARM module area
(16 MB at 8 KB granularity = exactly 2,048 cells, the on-chip maximum)
sees the wrapper directly.

These tests demonstrate the extension: normal systems leave module
space *silent*, so even a trivial "any access at all" rule on the
second Memometer catches the hijack instantly — a much cheaper
detector than the GMM, enabled by the same hardware.
"""

import numpy as np
import pytest

from repro.attacks import SyscallHijackRootkit
from repro.hw.memometer import MAX_CELLS, ControlRegisters, Memometer
from repro.sim.kernel.layout import MODULE_SPACE_BASE, MODULE_SPACE_SIZE
from repro.sim.platform import Platform, PlatformConfig


def module_space_memometer(interval_ns: int) -> Memometer:
    return Memometer(
        ControlRegisters(
            base_address=MODULE_SPACE_BASE,
            region_size=MODULE_SPACE_SIZE,
            granularity=8192,
            interval_ns=interval_ns,
        )
    )


class TestModuleSpaceRegion:
    def test_module_space_fits_on_chip_exactly(self):
        watcher = module_space_memometer(10_000_000)
        assert watcher.spec.num_cells == MAX_CELLS  # 16 MB / 8 KB = 2048

    def test_finer_granularity_rejected(self):
        with pytest.raises(Exception):
            ControlRegisters(
                base_address=MODULE_SPACE_BASE,
                region_size=MODULE_SPACE_SIZE,
                granularity=4096,
                interval_ns=10_000_000,
            )


class TestDualRegionDetection:
    @pytest.fixture()
    def watched_platform(self):
        platform = Platform(PlatformConfig(seed=71))
        watcher = module_space_memometer(platform.config.interval_ns)
        platform.kernel.attach_probe(watcher)
        return platform, watcher

    def test_module_space_silent_when_clean(self, watched_platform):
        platform, watcher = watched_platform
        platform.run_intervals(50)
        assert watcher.accepted_accesses == 0

    def test_wrapper_fetches_caught_immediately(self, watched_platform):
        platform, watcher = watched_platform
        platform.run_intervals(10)
        SyscallHijackRootkit().inject(platform)
        platform.run_intervals(5)
        # The hijacked read path runs constantly (fft/sha read a lot),
        # so the wrapper's module-space fetches pile up fast.
        assert watcher.accepted_accesses > 100
        counts = watcher.active_counts()
        module = platform.kernel.modules.get("netfilter_helper")
        hot_cells = np.flatnonzero(counts)
        for cell in hot_cells:
            start, end = watcher.spec.cell_range(int(cell))
            assert start < module.end_address and end > module.base_address

    def test_any_access_rule_has_zero_normal_fpr(self):
        """50 boots x 20 intervals of clean operation: never a single
        module-space access — the trivial rule is free of FPs here."""
        for seed in range(50, 55):
            platform = Platform(PlatformConfig(seed=seed))
            watcher = module_space_memometer(platform.config.interval_ns)
            platform.kernel.attach_probe(watcher)
            platform.run_intervals(20)
            assert watcher.accepted_accesses == 0, seed

    def test_rmmod_silences_module_space_again(self, watched_platform):
        platform, watcher = watched_platform
        rootkit = SyscallHijackRootkit()
        rootkit.inject(platform)
        platform.run_intervals(5)
        rootkit.revert(platform)
        before = watcher.accepted_accesses
        platform.run_intervals(20)
        assert watcher.accepted_accesses == before

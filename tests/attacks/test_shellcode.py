"""Tests for Scenario 2 semantics (shellcode execution)."""

import pytest

from repro.attacks import AttackError, ShellcodeAttack
from repro.sim.engine import NS_PER_MS


class TestInject:
    def test_disables_aslr(self, platform):
        attack = ShellcodeAttack()
        platform.run_for(20 * NS_PER_MS)
        assert platform.kernel.aslr.enabled
        attack.inject(platform)
        assert not platform.kernel.aslr.enabled

    def test_kills_host(self, platform):
        ShellcodeAttack(host="bitcount").inject(platform)
        assert "bitcount" not in platform.scheduler.task_names
        # Other tasks unaffected.
        assert {"fft", "basicmath", "sha"} <= set(platform.scheduler.task_names)

    def test_spawns_shell(self, platform):
        ShellcodeAttack().inject(platform)
        assert "sh" in platform.processes.alive_processes()

    def test_emits_attack_footprints(self, platform):
        before_procsys = platform.kernel.invocation_count("syscall.write_procsys")
        before_exec = platform.kernel.invocation_count("syscall.execve")
        ShellcodeAttack().inject(platform)
        assert (
            platform.kernel.invocation_count("syscall.write_procsys")
            == before_procsys + 1
        )
        assert platform.kernel.invocation_count("syscall.execve") == before_exec + 1

    def test_not_reversible(self, platform):
        attack = ShellcodeAttack()
        assert not attack.reversible
        with pytest.raises(AttackError, match="cannot be reverted"):
            attack.revert(platform)

    def test_double_execution_rejected(self, platform):
        attack = ShellcodeAttack()
        attack.inject(platform)
        with pytest.raises(AttackError, match="already executed"):
            attack.inject(platform)

    def test_missing_host_rejected(self, platform):
        attack = ShellcodeAttack(host="nonexistent")
        with pytest.raises(AttackError, match="not running"):
            attack.inject(platform)

    def test_aslr_only_variant(self, platform):
        """A stealthier payload that does not kill its host."""
        attack = ShellcodeAttack(spawn_shell=False)
        attack.inject(platform)
        assert not platform.kernel.aslr.enabled
        assert "bitcount" in platform.scheduler.task_names

    def test_host_jobs_stop_after_attack(self, platform):
        platform.run_for(100 * NS_PER_MS)
        completions = platform.scheduler.task("bitcount").stats.completions
        assert completions > 0
        ShellcodeAttack().inject(platform)
        platform.run_for(200 * NS_PER_MS)
        # No bitcount task anymore -> its stats are frozen with the TCB gone.
        assert "bitcount" not in platform.scheduler.task_names

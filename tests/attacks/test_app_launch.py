"""Tests for Scenario 1 semantics (app addition/deletion)."""

import pytest

from repro.attacks import AppLaunchAttack, AttackError
from repro.sim.engine import NS_PER_MS
from repro.sim.workloads.mibench import crc32_task


class TestInject:
    def test_launches_qsort_by_default(self, platform):
        attack = AppLaunchAttack()
        platform.run_for(50 * NS_PER_MS)
        attack.inject(platform)
        assert "qsort" in platform.scheduler.task_names
        assert attack.launched
        assert attack.reversible

    def test_custom_task(self, platform):
        attack = AppLaunchAttack(task=crc32_task())
        attack.inject(platform)
        assert "crc32" in platform.scheduler.task_names

    def test_double_inject_rejected(self, platform):
        attack = AppLaunchAttack()
        attack.inject(platform)
        with pytest.raises(AttackError, match="already launched"):
            attack.inject(platform)

    def test_start_delay_honoured(self, platform):
        attack = AppLaunchAttack(start_delay_ns=5 * NS_PER_MS)
        attack.inject(platform)
        platform.run_for(4 * NS_PER_MS)
        assert platform.scheduler.task("qsort").stats.releases == 0
        platform.run_for(2 * NS_PER_MS)
        assert platform.scheduler.task("qsort").stats.releases == 1

    def test_qsort_perturbs_other_tasks(self, platform):
        """The paper: 'the timings of the other tasks are affected'."""
        platform.run_for(500 * NS_PER_MS)
        sha_before = platform.scheduler.task("sha").stats.mean_response_ns
        AppLaunchAttack().inject(platform)
        platform.run_for(1000 * NS_PER_MS)
        sha_after = platform.scheduler.task("sha").stats.mean_response_ns
        assert sha_after > sha_before


class TestRevert:
    def test_revert_kills_qsort(self, platform):
        attack = AppLaunchAttack()
        attack.inject(platform)
        platform.run_for(100 * NS_PER_MS)
        attack.revert(platform)
        assert "qsort" not in platform.scheduler.task_names
        assert not attack.launched

    def test_revert_before_inject_rejected(self, platform):
        with pytest.raises(AttackError, match="not running"):
            AppLaunchAttack().revert(platform)

    def test_relaunch_after_revert(self, platform):
        attack = AppLaunchAttack()
        attack.inject(platform)
        platform.run_for(50 * NS_PER_MS)
        attack.revert(platform)
        platform.run_for(50 * NS_PER_MS)
        attack.inject(platform)
        assert "qsort" in platform.scheduler.task_names

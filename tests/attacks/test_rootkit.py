"""Tests for Scenario 3 semantics (syscall-hijacking rootkit)."""

import numpy as np
import pytest

from repro.attacks import AttackError, SyscallHijackRootkit
from repro.sim.engine import NS_PER_MS
from repro.sim.kernel.layout import KERNEL_TEXT_BASE
from repro.sim.trace import TraceRecorder


class TestInject:
    def test_hijacks_read(self, platform):
        attack = SyscallHijackRootkit()
        attack.inject(platform)
        assert platform.kernel.syscall_table.is_hijacked("read")
        entry = platform.kernel.syscall_table.hijacked_entry("read")
        assert entry.extra_latency_ns == 25_000

    def test_module_loaded_outside_monitored_region(self, platform):
        attack = SyscallHijackRootkit()
        attack.inject(platform)
        module = platform.kernel.modules.get("netfilter_helper")
        assert module.end_address <= KERNEL_TEXT_BASE
        for fn in module.functions:
            assert not platform.spec.contains(fn.address)

    def test_wrapper_footprint_is_invisible_to_mhm(self, platform):
        """The wrapper's fetches are filtered; the original handler's
        are not — Section 5.3's core observation."""
        attack = SyscallHijackRootkit()
        attack.inject(platform)
        recorder = TraceRecorder()
        platform.kernel.attach_probe(recorder)
        accepted_before = platform.memometer.accepted_accesses
        platform.kernel.invoke_syscall("read")
        wrapper_bursts = recorder.bursts_of_kind("hijack.read")
        original_bursts = recorder.bursts_of_kind("syscall.read")
        assert wrapper_bursts and original_bursts
        # Every wrapper address lies outside the monitored region.
        for burst in wrapper_bursts:
            indices, in_region = platform.spec.cell_indices(burst.addresses)
            assert not in_region.any()
        assert platform.memometer.accepted_accesses > accepted_before

    def test_hijack_adds_latency(self, platform):
        attack = SyscallHijackRootkit(extra_latency_ns=50_000)
        rng_latencies = [platform.kernel.invoke_syscall("read") for _ in range(20)]
        baseline = np.mean(rng_latencies)
        attack.inject(platform)
        hijacked = np.mean(
            [platform.kernel.invoke_syscall("read") for _ in range(20)]
        )
        assert hijacked > baseline + 40_000

    def test_load_spike_visible(self, platform):
        """Figure 9: the init_module burst dominates the interval."""
        normal = platform.collect_intervals(10)
        normal_mean = normal.traffic_volumes().mean()
        SyscallHijackRootkit().inject(platform)
        spike_interval = platform.collect_intervals(1)[0]
        assert spike_interval.total_accesses > 3 * normal_mean

    def test_double_inject_rejected(self, platform):
        attack = SyscallHijackRootkit()
        attack.inject(platform)
        with pytest.raises(AttackError, match="already loaded"):
            attack.inject(platform)

    def test_unknown_syscall_rejected(self, platform):
        attack = SyscallHijackRootkit(syscall="frobnicate")
        with pytest.raises(AttackError, match="no syscall"):
            attack.inject(platform)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            SyscallHijackRootkit(extra_latency_ns=-1)


class TestRevert:
    def test_rmmod_restores_table(self, platform):
        attack = SyscallHijackRootkit()
        attack.inject(platform)
        platform.run_for(50 * NS_PER_MS)
        attack.revert(platform)
        assert not platform.kernel.syscall_table.is_hijacked("read")
        assert not platform.kernel.modules.is_loaded("netfilter_helper")

    def test_revert_before_inject_rejected(self, platform):
        with pytest.raises(AttackError, match="not loaded"):
            SyscallHijackRootkit().revert(platform)

    def test_traffic_normal_after_hijack(self, platform):
        """Figure 9's aftermath: volume statistically unchanged."""
        normal = platform.collect_intervals(30).traffic_volumes()
        attack = SyscallHijackRootkit()
        attack.inject(platform)
        platform.run_intervals(2)  # skip the load spike
        after = platform.collect_intervals(30).traffic_volumes()
        assert abs(after.mean() - normal.mean()) < 0.15 * normal.mean()

"""Property tests: the stealth attacks are stealthy *by construction*.

The mimicry and slow-drift scenarios promise bounded activity as class
invariants (docstrings in :mod:`repro.attacks.mimicry` and
:mod:`repro.attacks.slow_drift`), and the conformance matrix relies on
those bounds to hold for every parametrization — not just the
defaults the matrix happens to run.  Hypothesis sweeps the parameter
spaces and pins:

* mimicry's realised padding rate (``1/cadence``) never exceeds the
  footprint envelope, and its pump cycle is drawn entirely from the
  victim's own syscall mix in victim proportions;
* slow-drift's per-interval pump count is bounded by
  ``ceil(max_rate)`` and its cumulative output never outruns the
  accumulated fractional rate budget.
"""

from __future__ import annotations

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.attacks import MimicryShellcodeAttack, SlowDriftExfiltration
from repro.sim.platform import PlatformConfig
from repro.sim.task import SyscallUse, TaskDefinition

INTERVAL_NS = PlatformConfig().interval_ns

#: The real task set the default platform schedules — the envelopes
#: the default mimicry configuration actually hides in.
DEFAULT_TASKS = tuple(PlatformConfig().tasks)


def _synthetic_tasks():
    """Synthesised victims: arbitrary mixes, periods and job lengths."""
    syscall_names = st.sampled_from(
        ["read", "write", "open", "getpid", "gettimeofday", "brk"]
    )
    uses = st.lists(
        st.builds(
            SyscallUse, name=syscall_names, count=st.integers(1, 50)
        ),
        min_size=1,
        max_size=5,
        unique_by=lambda use: use.name,
    )
    return st.builds(
        lambda period, util, syscalls: TaskDefinition(
            name="victim",
            exec_time_ns=max(1, int(period * util)),
            period_ns=period,
            syscalls=tuple(syscalls),
        ),
        period=st.integers(1_000_000, 200_000_000),
        util=st.floats(0.01, 0.9),
        syscalls=uses,
    )


TASKS = st.one_of(st.sampled_from(DEFAULT_TASKS), _synthetic_tasks())


class TestMimicryEnvelope:
    @given(
        task=TASKS,
        budget=st.floats(0.001, 1.0),
        cycle_length=st.integers(1, 16),
    )
    def test_realised_rate_never_exceeds_envelope(
        self, task, budget, cycle_length
    ):
        attack = MimicryShellcodeAttack(
            host=task.name, budget_fraction=budget, cycle_length=cycle_length
        )
        envelope = attack.victim_envelope(task, INTERVAL_NS)
        cadence = attack.cadence_intervals(task, INTERVAL_NS)
        if cadence == 0:
            # Zero envelope: the payload stays dormant — trivially
            # inside the budget.
            assert attack.padding_rate(task, INTERVAL_NS) == 0.0
            return
        realised = 1.0 / cadence
        # One whole call per cadence window: at most the envelope when
        # the budgeted rate is fractional, never more than one call
        # per interval otherwise.
        assert realised <= max(attack.padding_rate(task, INTERVAL_NS), 1.0)
        assert realised <= max(envelope, 1.0)

    @given(task=TASKS, budget=st.floats(0.001, 0.2))
    def test_fractional_budgets_realise_fractionally(self, task, budget):
        """For the sub-call budgets mimicry actually uses, the duty
        cycle is strictly bounded by the budgeted rate."""
        attack = MimicryShellcodeAttack(host=task.name, budget_fraction=budget)
        rate = attack.padding_rate(task, INTERVAL_NS)
        cadence = attack.cadence_intervals(task, INTERVAL_NS)
        if cadence and rate < 1.0:
            assert 1.0 / cadence <= rate

    @given(task=TASKS, cycle_length=st.integers(1, 16))
    def test_plan_is_victim_mix_in_victim_proportions(self, task, cycle_length):
        attack = MimicryShellcodeAttack(
            host=task.name, cycle_length=cycle_length
        )
        plan = attack.plan(task)
        assert len(plan) == cycle_length
        names = {use.name for use in task.syscalls}
        assert set(plan) <= names
        total = sum(use.count for use in task.syscalls)
        for use in task.syscalls:
            exact = cycle_length * use.count / total
            # Largest-remainder apportionment: within one slot of the
            # exact proportional share.
            assert abs(plan.count(use.name) - exact) < 1.0

    @given(task=TASKS, cycle_length=st.integers(1, 16))
    def test_plan_is_deterministic(self, task, cycle_length):
        attack = MimicryShellcodeAttack(
            host=task.name, cycle_length=cycle_length
        )
        assert attack.plan(task) == attack.plan(task)


RAMPS = st.builds(
    lambda start, ramp, extra: SlowDriftExfiltration(
        start_rate=start, ramp_per_interval=ramp, max_rate=start + extra
    ),
    start=st.floats(0.0, 2.0),
    ramp=st.floats(0.0, 0.5),
    extra=st.floats(0.0, 3.0),
)


class TestSlowDriftRamp:
    @given(attack=RAMPS, k=st.integers(0, 300))
    def test_pump_count_bounded_by_max_rate(self, attack, k):
        count = attack.pump_count(k)
        assert 0 <= count <= math.ceil(attack.max_rate)

    @given(attack=RAMPS, n=st.integers(0, 120))
    def test_cumulative_pumps_never_outrun_the_rate_budget(self, attack, n):
        """Σ pump_count telescopes to ⌊Σ rate⌋ — the "slow" invariant."""
        total = sum(attack.pump_count(k) for k in range(n + 1))
        budget = sum(attack.rate(k) for k in range(n + 1))
        assert total == math.floor(budget)
        assert total <= budget

    @given(attack=RAMPS, k=st.integers(0, 300))
    def test_rate_is_monotone_and_saturates(self, attack, k):
        assert attack.rate(k) <= attack.rate(k + 1) <= attack.max_rate

"""The corpus-wide attack contract, parametrized over every scenario.

Per-scenario suites (``test_rootkit.py`` & co.) pin scenario-specific
semantics; this module pins what *every* registered attack must honour
for the conformance matrix and the fleet simulator to stay sound:

* injection is deterministic — the same seed replays bit-identically;
* the scenario seed actually steers the trajectory;
* reversible attacks survive a full inject → revert → re-inject
  round-trip on a fresh platform (``FleetSimulator`` reuses attack
  objects across device boots);
* every attack declares a complete, in-vocabulary expected-outcome row
  for the conformance matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import AttackError
from repro.conformance.matrix import DETECTOR_COLUMNS, OUTCOME_VOCABULARY
from repro.pipeline.scenario import ScenarioRunner
from repro.pipeline.stages import SCENARIOS, make_attack, scenario_reversible
from repro.sim.fleet import build_fleet_specs
from repro.sim.platform import Platform, PlatformConfig

ALL_SCENARIOS = sorted(SCENARIOS)

PRE, DURING, POST = 3, 5, 3


def _run(scenario: str, seed: int = 123, post: int = 0, attack=None):
    platform = Platform(PlatformConfig(seed=seed))
    attack = attack if attack is not None else make_attack(scenario)
    result = ScenarioRunner(platform).run(
        attack, pre_intervals=PRE, attack_intervals=DURING, post_intervals=post
    )
    return attack, result


@pytest.mark.parametrize("scenario", ALL_SCENARIOS)
class TestRegistry:
    def test_factory_builds_fresh_named_attacks(self, scenario):
        first, second = make_attack(scenario), make_attack(scenario)
        # Attack names elaborate on the registry key (e.g. "rootkit"
        # -> "rootkit-syscall-hijack") but always lead with it.
        assert first.name.startswith(scenario)
        assert first is not second

    def test_reversibility_helper_matches_attack(self, scenario):
        assert scenario_reversible(scenario) == make_attack(scenario).reversible

    def test_expected_outcomes_row_is_complete(self, scenario):
        declared = dict(SCENARIOS[scenario].expected_outcomes)
        assert set(declared) == set(DETECTOR_COLUMNS)
        for column, value in declared.items():
            assert value in OUTCOME_VOCABULARY[column], (scenario, column)


@pytest.mark.parametrize("scenario", ALL_SCENARIOS)
class TestDeterminism:
    def test_injection_replays_bit_identically(self, scenario):
        _, first = _run(scenario)
        _, second = _run(scenario)
        np.testing.assert_array_equal(first.series.matrix(), second.series.matrix())
        assert [e.label for e in first.events] == [e.label for e in second.events]
        assert first.attack_interval == second.attack_interval

    def test_seed_steers_the_trajectory(self, scenario):
        _, a = _run(scenario, seed=123)
        _, b = _run(scenario, seed=124)
        assert not np.array_equal(a.series.matrix(), b.series.matrix())


@pytest.mark.parametrize(
    "scenario", [s for s in ALL_SCENARIOS if scenario_reversible(s)]
)
class TestRevertRoundTrip:
    def test_revert_then_reinject_is_bit_identical(self, scenario):
        """FleetSimulator's contract: one attack object, many boots."""
        attack, first = _run(scenario, post=POST)
        assert first.revert_interval is not None
        # The same object re-runs on a fresh platform and reproduces
        # the first run exactly — no state leaks across the revert.
        _, second = _run(scenario, post=POST, attack=attack)
        np.testing.assert_array_equal(first.series.matrix(), second.series.matrix())

    def test_double_revert_rejected(self, scenario):
        attack, _ = _run(scenario, post=POST)
        with pytest.raises(AttackError):
            attack.revert(Platform(PlatformConfig(seed=5)))


class TestNonReversible:
    def test_shellcode_refuses_post_window(self):
        with pytest.raises(ValueError, match="not reversible"):
            _run("shellcode", post=POST)


class TestFleetIntegration:
    def test_specs_cycle_through_the_full_corpus(self):
        specs = build_fleet_specs(
            len(ALL_SCENARIOS),
            60,
            attacked_devices=len(ALL_SCENARIOS),
            attack_scenarios=tuple(ALL_SCENARIOS),
        )
        assert [s.scenario for s in specs] == ALL_SCENARIOS
        for spec in specs:
            assert spec.inject_interval is not None
            if scenario_reversible(spec.scenario):
                assert spec.revert_interval is not None
            else:
                assert spec.revert_interval is None

"""Shared fixtures.

Expensive artifacts (platform boots, trained detectors) are
session-scoped: the quick-scale reference detector takes a couple of
seconds to train and is reused by the learn/, attacks/, pipeline/ and
integration/ suites.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings as _hypothesis_settings

from repro.core.spec import HeatMapSpec

# Pinned hypothesis profiles — flake hardening.  "ci" digs deeper and
# is derandomized so every CI run explores the identical example
# sequence (a red run reproduces locally with HYPOTHESIS_PROFILE=ci);
# deadline=None because shared runners miss per-example deadlines on
# cold numpy/BLAS paths.  "dev" keeps the edit-test loop fast.  The
# active profile is selected via HYPOTHESIS_PROFILE (default dev).
_hypothesis_settings.register_profile(
    "ci", max_examples=200, deadline=None, derandomize=True
)
_hypothesis_settings.register_profile("dev", max_examples=25, deadline=None)
_hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
from repro.pipeline.experiments import QUICK_SCALE, get_reference_artifacts
from repro.sim.kernel.layout import KernelLayout
from repro.sim.platform import Platform, PlatformConfig


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden regression fixtures under tests/fixtures/ "
        "from the current pipeline output instead of comparing against them",
    )


@pytest.fixture()
def update_goldens(request) -> bool:
    """True when the run should rewrite golden fixtures in place."""
    return bool(request.config.getoption("--update-goldens"))


@pytest.fixture(scope="session")
def layout() -> KernelLayout:
    """The canonical synthetic kernel layout (deterministic)."""
    return KernelLayout()


@pytest.fixture(scope="session")
def paper_spec() -> HeatMapSpec:
    """The paper's monitored region: 1,472 cells at 2 KB."""
    return HeatMapSpec(base_address=0xC0008000, region_size=3_013_284, granularity=2048)


@pytest.fixture()
def small_spec() -> HeatMapSpec:
    """A tiny region for hand-computed expectations."""
    return HeatMapSpec(base_address=0x1000, region_size=0x800, granularity=0x100)


@pytest.fixture()
def platform() -> Platform:
    """A fresh default platform (paper task set, seed 7)."""
    return Platform(PlatformConfig(seed=7))


@pytest.fixture(scope="session")
def quick_artifacts():
    """Quick-scale trained detector + training data (memoised)."""
    return get_reference_artifacts(QUICK_SCALE)


@pytest.fixture(scope="session")
def quick_detector(quick_artifacts):
    return quick_artifacts.detector


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(42)

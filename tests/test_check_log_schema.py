"""The static log-schema checker catches what runtime paths might miss."""

import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_log_schema  # noqa: E402
from repro.obs.log import EVENTS  # noqa: E402


def _violations(tmp_path, source):
    path = tmp_path / "snippet.py"
    path.write_text(source)
    return [msg for _, _, msg in check_log_schema.check_file(path, EVENTS)]


class TestCheckFile:
    def test_clean_call_passes(self, tmp_path):
        assert _violations(
            tmp_path,
            'log.event("serve.alarm", device_id="d", shard=0, interval=1, streak=3)\n',
        ) == []

    def test_unregistered_event_flagged(self, tmp_path):
        msgs = _violations(tmp_path, 'log.event("serve.bogus")\n')
        assert msgs == ["unregistered event 'serve.bogus'"]

    def test_undeclared_field_flagged(self, tmp_path):
        msgs = _violations(tmp_path, 'self._log.event("serve.alarm", intervall=1)\n')
        assert len(msgs) == 1
        assert "undeclared field 'intervall'" in msgs[0]

    def test_computed_name_flagged(self, tmp_path):
        msgs = _violations(tmp_path, "log.event(name, interval=1)\n")
        assert msgs == ["event name must be a string literal (got an expression)"]

    def test_star_kwargs_flagged(self, tmp_path):
        msgs = _violations(tmp_path, 'log.event("serve.alarm", **extra)\n')
        assert any("**kwargs" in m for m in msgs)

    def test_obs_logger_receiver_matched(self, tmp_path):
        msgs = _violations(tmp_path, 'obs.logger().event("nope")\n')
        assert msgs == ["unregistered event 'nope'"]

    def test_unrelated_event_methods_ignored(self, tmp_path):
        assert _violations(tmp_path, 'dispatcher.event("anything", x=1)\n') == []

    def test_envelope_keywords_always_allowed(self, tmp_path):
        assert _violations(
            tmp_path,
            'log.event("serve.queue.stall", level="warn", sim_time_ns=1,'
            " seed=0, depth=2)\n",
        ) == []


class TestWholeTree:
    def test_src_tree_is_clean(self):
        result = subprocess.run(
            [sys.executable, "tools/check_log_schema.py", "src"],
            capture_output=True, text=True, cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout

    def test_violation_exits_nonzero(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text('log.event("serve.alarm", bogus=1)\n')
        result = subprocess.run(
            [sys.executable, "tools/check_log_schema.py", str(bad)],
            capture_output=True, text=True, cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 1
        assert "undeclared field" in result.stderr

"""Tests for anomaly attribution/forensics."""

import numpy as np
import pytest

from repro.analysis import explain_heatmap
from repro.attacks import AppLaunchAttack, SyscallHijackRootkit
from repro.learn.detector import MhmDetector
from repro.sim.platform import Platform


@pytest.fixture(scope="module")
def forensic_setup(quick_artifacts, layout):
    platform = Platform(quick_artifacts.config.with_seed(808))
    platform.run_intervals(20)
    return platform, quick_artifacts.detector, layout


class TestBasics:
    def test_normal_interval_not_anomalous(self, forensic_setup):
        platform, detector, layout = forensic_setup
        heat_map = platform.collect_intervals(1)[0]
        report = explain_heatmap(detector, heat_map, layout)
        assert not report.is_anomalous
        assert len(report.cells) == 10
        assert 0 <= report.nearest_component < detector.num_gaussians
        assert 0.0 <= report.component_responsibility <= 1.0

    def test_shares_sum_below_one(self, forensic_setup):
        platform, detector, layout = forensic_setup
        heat_map = platform.collect_intervals(1)[0]
        report = explain_heatmap(detector, heat_map, layout, top_k=5)
        assert sum(c.deviation_share for c in report.cells) <= 1.0 + 1e-9
        assert sum(report.subsystem_shares.values()) <= 1.0 + 1e-9

    def test_render_is_readable(self, forensic_setup):
        platform, detector, layout = forensic_setup
        heat_map = platform.collect_intervals(1)[0]
        text = explain_heatmap(detector, heat_map, layout).render()
        assert "log10 Pr(M)" in text
        assert "top deviating cells" in text

    def test_without_layout(self, forensic_setup):
        platform, detector, _ = forensic_setup
        heat_map = platform.collect_intervals(1)[0]
        report = explain_heatmap(detector, heat_map, layout=None)
        assert all(c.functions == () for c in report.cells)

    def test_unfitted_detector_rejected(self, forensic_setup):
        platform, _, _ = forensic_setup
        heat_map = platform.collect_intervals(1)[0]
        with pytest.raises(RuntimeError, match="fitted"):
            explain_heatmap(MhmDetector(), heat_map)


class TestAttackForensics:
    def test_rootkit_load_attributes_to_module_loader(
        self, quick_artifacts, layout
    ):
        """The flagged load interval must point at the loader path."""
        platform = Platform(quick_artifacts.config.with_seed(809))
        platform.run_intervals(10)
        SyscallHijackRootkit().inject(platform)
        load_map = platform.collect_intervals(1)[0]
        report = explain_heatmap(
            quick_artifacts.detector, load_map, layout, top_k=15
        )
        assert report.is_anomalous
        named = {fn for cell in report.cells for fn in cell.functions}
        loader_symbols = {
            "load_module",
            "apply_relocate",
            "simplify_symbols",
            "sys_init_module",
            "memcpy",
            "strcmp",
        }
        assert named & loader_symbols, sorted(named)[:20]
        assert report.dominant_subsystem in {"module", "lib"}

    def test_app_launch_attributes_to_process_path(
        self, quick_artifacts, layout
    ):
        """The launch interval's deviation involves fork/exec cells."""
        platform = Platform(quick_artifacts.config.with_seed(810))
        platform.run_intervals(10)
        AppLaunchAttack().inject(platform)
        launch_map = platform.collect_intervals(1)[0]
        report = explain_heatmap(
            quick_artifacts.detector, launch_map, layout, top_k=20
        )
        named = {fn for cell in report.cells for fn in cell.functions}
        process_symbols = {
            "copy_process",
            "do_fork",
            "load_elf_binary",
            "do_execve",
            "do_mmap_pgoff",
            "handle_mm_fault",
        }
        assert named & process_symbols, sorted(named)[:20]

"""Snapshot writer cadence, atomicity and the reader side."""

import json

import pytest

from repro import obs
from repro.obs.snapshots import (
    EVENT_FEED,
    FEED_LIMIT,
    SNAPSHOT_SCHEMA_VERSION,
    SnapshotWriter,
    latest_snapshots,
    load_snapshots,
)


@pytest.fixture
def live_obs():
    with obs.observed() as (metrics, _):
        metrics.counter("serve.alarms").inc(2)
        yield metrics


class TestWriter:
    def test_cadence_is_one_based_modulo(self, tmp_path, live_obs):
        writer = SnapshotWriter(tmp_path, interval=3)
        fired = [writer.maybe_write(step, sim_time_ns=step * 10) for step in range(1, 8)]
        assert fired == [False, False, True, False, False, True, False]
        assert writer.seq == 2

    def test_no_interval_means_manual_only(self, tmp_path, live_obs):
        writer = SnapshotWriter(tmp_path)
        assert not writer.maybe_write(1, sim_time_ns=0)
        assert list(tmp_path.iterdir()) == []

    def test_interval_validated(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotWriter(tmp_path, interval=0)

    def test_payload_shape(self, tmp_path, live_obs):
        writer = SnapshotWriter(
            tmp_path, shard=2, meta={"devices": 4, "seed": 7}
        )
        path = writer.write(step=5, sim_time_ns=1_000)
        assert path.name == "shard2-000001.metrics.json"
        payload = json.loads(path.read_text())
        assert payload["schema"] == SNAPSHOT_SCHEMA_VERSION
        assert payload["shard"] == 2
        assert payload["seq"] == 1
        assert payload["step"] == 5
        assert payload["sim_time_ns"] == 1_000
        assert payload["final"] is False
        assert payload["meta"] == {"devices": 4, "seed": 7}
        assert payload["metrics"]["serve.alarms"]["value"] == 2
        assert payload["recent_events"] == []

    def test_openmetrics_sidecar_written(self, tmp_path, live_obs):
        SnapshotWriter(tmp_path).write(step=1, sim_time_ns=0)
        om = (tmp_path / "shard0-000001.om").read_text()
        assert "repro_serve_alarms_total 2" in om
        assert om.endswith("# EOF\n")
        assert not list(tmp_path.glob("*.tmp"))

    def test_final_flag(self, tmp_path, live_obs):
        writer = SnapshotWriter(tmp_path)
        path = writer.write_final(step=9, sim_time_ns=90)
        assert json.loads(path.read_text())["final"] is True

    def test_recent_events_feed_filtered_and_capped(self, tmp_path, live_obs):
        log = obs.logger()
        log.event("serve.start", devices=1, shards=1, intervals=1,
                  policy="p", batch_size=1)  # not in the feed
        for i in range(FEED_LIMIT + 5):
            log.event("serve.alarm", interval=i, streak=1)
        payload = json.loads(
            SnapshotWriter(tmp_path).write(step=1, sim_time_ns=0).read_text()
        )
        events = payload["recent_events"]
        assert len(events) == FEED_LIMIT
        assert all(e["event"] in EVENT_FEED for e in events)
        assert events[-1]["fields"]["interval"] == FEED_LIMIT + 4


class TestReaders:
    def _write_series(self, tmp_path):
        with obs.observed():
            for shard in (0, 1):
                writer = SnapshotWriter(tmp_path, shard=shard)
                writer.write(step=1, sim_time_ns=10)
                writer.write_final(step=2, sim_time_ns=20)

    def test_load_groups_by_shard_sorted_by_seq(self, tmp_path):
        self._write_series(tmp_path)
        series = load_snapshots(tmp_path)
        assert sorted(series) == [0, 1]
        assert [s["seq"] for s in series[0]] == [1, 2]
        assert series[1][-1]["final"] is True

    def test_latest_picks_newest_per_shard(self, tmp_path):
        self._write_series(tmp_path)
        latest = latest_snapshots(tmp_path)
        assert {shard: s["seq"] for shard, s in latest.items()} == {0: 2, 1: 2}

    def test_torn_and_foreign_files_skipped(self, tmp_path):
        self._write_series(tmp_path)
        (tmp_path / "shard0-000099.metrics.json").write_text("{not json")
        (tmp_path / "notes.txt").write_text("ignore me")
        series = load_snapshots(tmp_path)
        assert [s["seq"] for s in series[0]] == [1, 2]

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_snapshots(tmp_path / "nope") == {}
        assert latest_snapshots(tmp_path / "nope") == {}

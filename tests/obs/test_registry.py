"""Tests for the metrics registry: instruments, bucketing, no-op twin."""

import math
import time

import pytest

from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS_US,
    NOOP_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopMetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_snapshot(self):
        counter = Counter("c")
        counter.inc(7)
        assert counter.snapshot() == {"type": "counter", "value": 7}


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("g")
        gauge.set(3.5)
        gauge.set(-1.0)
        assert gauge.value == -1.0
        assert gauge.snapshot() == {"type": "gauge", "value": -1.0}


class TestHistogramBucketing:
    def test_bounds_are_inclusive_upper(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 5.0))
        hist.observe(1.0)  # == first bound -> bucket 0
        hist.observe(1.5)  # -> bucket 1 (le=2)
        hist.observe(2.0)  # == second bound -> bucket 1
        hist.observe(5.0)  # == last bound -> bucket 2
        assert hist.bucket_counts == [1, 2, 1, 0]

    def test_overflow_bucket(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(100.0)
        assert hist.bucket_counts == [0, 0, 1]
        snapshot = hist.snapshot()
        assert snapshot["buckets"][-1] == {"le": "inf", "count": 1}

    def test_bounds_sorted_at_construction(self):
        hist = Histogram("h", buckets=(5.0, 1.0, 2.0))
        assert hist.bounds == (1.0, 2.0, 5.0)

    def test_duplicate_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_running_stats(self):
        hist = Histogram("h", buckets=(10.0,))
        for v in (1.0, 3.0, 8.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.total == pytest.approx(12.0)
        assert hist.mean == pytest.approx(4.0)
        assert hist.min == 1.0
        assert hist.max == 8.0

    def test_quantile_approximation(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 0.6, 1.5, 4.0):
            hist.observe(v)
        assert hist.quantile(0.5) == 1.0  # 2 of 4 obs in the le=1 bucket
        assert hist.quantile(1.0) == 5.0
        assert Histogram("h2", buckets=(1.0,)).quantile(0.5) == 0.0

    def test_quantile_overflow_is_inf(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(9.0)
        assert hist.quantile(1.0) == math.inf

    def test_empty_snapshot_min_max_none(self):
        snapshot = Histogram("h", buckets=(1.0,)).snapshot()
        assert snapshot["min"] is None and snapshot["max"] is None


class TestRegistry:
    def test_instruments_are_registered_once(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already a Counter"):
            registry.gauge("x")

    def test_snapshot_is_sorted_and_jsonable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.gauge("a").set(1.5)
        registry.histogram("c", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a", "b", "c"]
        json.dumps(snapshot)  # must not raise

    def test_span_times_into_timer_histogram(self):
        registry = MetricsRegistry()
        with registry.span("phase"):
            time.sleep(0.001)
        hist = registry.get("phase")
        assert hist.count == 1
        assert hist.total >= 1_000.0  # at least 1 ms in µs

    def test_timer_uses_default_buckets(self):
        registry = MetricsRegistry()
        assert registry.timer("t").bounds == tuple(DEFAULT_TIME_BUCKETS_US)


class TestNoopRegistry:
    def test_shared_singletons(self):
        registry = NoopMetricsRegistry()
        assert registry.counter("a") is registry.counter("b")
        assert registry.histogram("a") is registry.timer("b")
        assert registry.gauge("a") is NOOP_METRICS.gauge("z")

    def test_all_operations_are_inert(self):
        registry = NoopMetricsRegistry()
        registry.counter("c").inc(10)
        registry.gauge("g").set(5.0)
        registry.histogram("h").observe(1.0)
        with registry.span("s"):
            pass
        assert registry.counter("c").value == 0
        assert registry.snapshot() == {}
        assert registry.names() == []
        assert registry.get("c") is None

    def test_enabled_flags(self):
        assert MetricsRegistry().enabled is True
        assert NoopMetricsRegistry().enabled is False

"""Observability must never perturb results.

The whole obs layer only *reads* wall-clock time and simulated state:
it must not touch any RNG, reorder events, or change a single counter
in an MHM.  These tests run identical workloads with observability
fully enabled and fully disabled and require bit-identical outputs —
heat maps, detector parameters and verdicts alike.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.learn.detector import MhmDetector
from repro.pipeline.monitoring import OnlineMonitor
from repro.pipeline.scenario import ScenarioRunner
from repro.attacks import SyscallHijackRootkit
from repro.sim.platform import Platform, PlatformConfig


def _collect_matrix(seed: int, intervals: int) -> np.ndarray:
    platform = Platform(PlatformConfig(seed=seed))
    return platform.collect_intervals(intervals).matrix()


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=8, deadline=None)
def test_mhm_collection_is_bit_identical(seed):
    """Property: enabled-vs-disabled MHMs agree for any platform seed."""
    obs.disable()
    baseline = _collect_matrix(seed, 6)
    with obs.observed():
        instrumented = _collect_matrix(seed, 6)
    np.testing.assert_array_equal(baseline, instrumented)


def _train_and_score(seed: int):
    platform = Platform(PlatformConfig(seed=seed))
    training = platform.collect_intervals(40)
    validation = Platform(PlatformConfig(seed=seed + 1)).collect_intervals(30)
    detector = MhmDetector(
        num_gaussians=2, em_restarts=2, seed=seed
    ).fit(training, validation)

    attack_platform = Platform(PlatformConfig(seed=seed + 2))
    monitor = OnlineMonitor(
        attack_platform, detector, consecutive_for_alarm=1
    )
    monitor.attach()
    result = ScenarioRunner(attack_platform).run(
        SyscallHijackRootkit(), pre_intervals=10, attack_intervals=10
    )
    results = attack_platform.secure_core.online_results
    return {
        "training": training.matrix(),
        "pca_mean": detector.eigenmemory.mean_,
        "pca_components": detector.eigenmemory.components_,
        "gmm_weights": detector.gmm.parameters.weights,
        "gmm_means": detector.gmm.parameters.means,
        "gmm_covariances": detector.gmm.parameters.covariances,
        "threshold": np.array([detector.threshold(1.0)]),
        "series": result.series.matrix(),
        "densities": np.array([r.log_density for r in results]),
        "verdicts": np.array([r.is_anomalous for r in results]),
        "alarm_intervals": np.array([a.interval_index for a in monitor.alarms]),
    }


def test_full_pipeline_is_bit_identical():
    """Training, detector parameters and online verdicts are unchanged
    by enabling metrics + tracing (and the instrumented run actually
    recorded something, so the comparison is not vacuous)."""
    obs.disable()
    baseline = _train_and_score(seed=77)
    with obs.observed() as (registry, tracer):
        instrumented = _train_and_score(seed=77)
        recorded_metrics = registry.counter("sim.events_executed").value
        recorded_events = len(tracer)

    assert recorded_metrics > 0, "instrumentation was not active"
    assert recorded_events > 0, "tracer was not active"
    assert baseline.keys() == instrumented.keys()
    for key in baseline:
        np.testing.assert_array_equal(
            baseline[key], instrumented[key], err_msg=f"mismatch in {key}"
        )


def test_metrics_only_and_tracing_only_are_also_identical():
    obs.disable()
    baseline = _collect_matrix(5, 4)
    with obs.observed(with_metrics=True, with_tracing=False):
        metrics_only = _collect_matrix(5, 4)
    with obs.observed(with_metrics=False, with_tracing=True):
        tracing_only = _collect_matrix(5, 4)
    np.testing.assert_array_equal(baseline, metrics_only)
    np.testing.assert_array_equal(baseline, tracing_only)


def test_observed_restores_previous_state():
    obs.disable()
    with obs.observed():
        assert obs.is_enabled()
    assert not obs.is_enabled()

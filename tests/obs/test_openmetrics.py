"""OpenMetrics exposition: naming, grouping, cumulative buckets."""

from repro.obs.openmetrics import render_openmetrics
from repro.obs.registry import MetricsRegistry, log_buckets


def _registry_with_everything() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("serve.queue.dropped").inc(3)
    registry.gauge("serve.queue.depth").set(7)
    hist = registry.histogram("serve.batch_fill", buckets=(1, 2, 4))
    for value in (1, 2, 3, 5):
        hist.observe(value)
    family = registry.counter_family("serve.shard.intervals_scored", ("shard",))
    family.labels(shard="0").inc(10)
    family.labels(shard="1").inc(12)
    return registry


class TestRenderOpenmetrics:
    def test_counter_gets_total_suffix_and_sanitised_name(self):
        text = render_openmetrics(_registry_with_everything().snapshot())
        assert "# TYPE repro_serve_queue_dropped counter" in text
        assert "repro_serve_queue_dropped_total 3" in text

    def test_gauge_plain(self):
        text = render_openmetrics(_registry_with_everything().snapshot())
        assert "repro_serve_queue_depth 7" in text

    def test_labelled_family_grouped_under_one_type_line(self):
        text = render_openmetrics(_registry_with_everything().snapshot())
        assert text.count("# TYPE repro_serve_shard_intervals_scored counter") == 1
        assert 'repro_serve_shard_intervals_scored_total{shard="0"} 10' in text
        assert 'repro_serve_shard_intervals_scored_total{shard="1"} 12' in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = render_openmetrics(_registry_with_everything().snapshot())
        assert 'repro_serve_batch_fill_bucket{le="1.0"} 1' in text
        assert 'repro_serve_batch_fill_bucket{le="2.0"} 2' in text
        assert 'repro_serve_batch_fill_bucket{le="4.0"} 3' in text
        assert 'repro_serve_batch_fill_bucket{le="+Inf"} 4' in text
        assert "repro_serve_batch_fill_sum 11.0" in text
        assert "repro_serve_batch_fill_count 4" in text

    def test_quantile_gauges_ride_along(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=log_buckets(1, 1000))
        for value in range(1, 101):
            hist.observe(float(value))
        text = render_openmetrics(registry.snapshot())
        assert "# TYPE repro_lat_quantile gauge" in text
        assert 'repro_lat_quantile{quantile="p50"}' in text
        assert 'repro_lat_quantile{quantile="p99"}' in text

    def test_ends_with_eof(self):
        assert render_openmetrics({}).endswith("# EOF\n")
        text = render_openmetrics(_registry_with_everything().snapshot())
        assert text.endswith("# EOF\n")

    def test_custom_prefix(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        text = render_openmetrics(registry.snapshot(), prefix="mhm")
        assert "mhm_x_total 1" in text

"""Structured logging: schema enforcement, sinks, determinism."""

import json

import pytest

from repro import obs
from repro.obs.log import (
    EVENTS,
    LOG_SCHEMA_VERSION,
    NOOP_LOGGER,
    FileSink,
    RingBufferSink,
    StructuredLogger,
    register_event,
)


class TestEventRegistry:
    def test_serve_and_runner_events_are_registered(self):
        for name in (
            "serve.start",
            "serve.alarm",
            "serve.queue.drop",
            "serve.drift.flag",
            "serve.report.ready",
            "serve.health",
            "runner.grid.start",
            "runner.job.retry",
            "runner.job.failed",
            "runner.job.completed",
        ):
            assert name in EVENTS
            assert EVENTS[name].component in ("serve", "runner")

    def test_reregister_identical_is_idempotent(self):
        spec = EVENTS["serve.alarm"]
        again = register_event(
            "serve.alarm", "serve", ("interval", "streak"),
            spec.description,
        )
        assert again == spec

    def test_conflicting_reregister_raises(self):
        with pytest.raises(ValueError, match="different spec"):
            register_event("serve.alarm", "serve", ("other_field",))


class TestStructuredLogger:
    def test_record_envelope(self):
        log = StructuredLogger()
        record = log.event(
            "serve.alarm",
            level="warn",
            device_id="dev-0001",
            shard=2,
            sim_time_ns=123,
            seed=7,
            interval=9,
            streak=3,
        )
        assert record["schema"] == LOG_SCHEMA_VERSION
        assert record["seq"] == 0
        assert record["event"] == "serve.alarm"
        assert record["component"] == "serve"
        assert record["level"] == "warn"
        assert record["device_id"] == "dev-0001"
        assert record["shard"] == 2
        assert record["sim_time_ns"] == 123
        assert record["seed"] == 7
        assert record["fields"] == {"interval": 9, "streak": 3}
        assert "trace_id" not in record

    def test_seq_increments(self):
        log = StructuredLogger()
        first = log.event("serve.queue.stall", depth=4)
        second = log.event("serve.queue.stall", depth=5)
        assert (first["seq"], second["seq"]) == (0, 1)

    def test_trace_context_is_flattened(self):
        log = StructuredLogger()
        ctx = obs.TraceContext.for_interval(11, "dev-0000", 3).child("score")
        record = log.event("serve.alarm", trace=ctx, interval=3, streak=1)
        assert record["trace_id"] == ctx.trace_id
        assert record["span_id"] == ctx.span_id
        assert record["parent_id"] == ctx.parent_id

    def test_unregistered_event_rejected(self):
        with pytest.raises(ValueError, match="unregistered"):
            StructuredLogger().event("serve.nonsense")

    def test_undeclared_field_rejected(self):
        with pytest.raises(ValueError, match="does not declare"):
            StructuredLogger().event("serve.alarm", interval=1, bogus=2)

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="level"):
            StructuredLogger().event("serve.alarm", level="fatal", interval=1)

    def test_records_filter_by_event(self):
        log = StructuredLogger()
        log.event("serve.queue.stall", depth=1)
        log.event("serve.alarm", interval=2, streak=3)
        assert len(log.records()) == 2
        assert len(log.records(event="serve.alarm")) == 1
        assert len(log.records(events=("serve.alarm", "serve.queue.stall"))) == 2

    def test_emit_record_replays_untouched(self):
        log = StructuredLogger()
        foreign = {"schema": 1, "seq": 42, "event": "serve.alarm", "shard": 3}
        log.emit_record(foreign)
        assert log.records() == [foreign]


class TestSinks:
    def test_ring_buffer_is_bounded(self):
        sink = RingBufferSink(capacity=4)
        for i in range(10):
            sink.emit({"seq": i})
        assert len(sink) == 4
        assert [r["seq"] for r in sink.records()] == [6, 7, 8, 9]

    def test_file_sink_writes_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = StructuredLogger()
        log.add_sink(FileSink(path))
        log.event("serve.queue.stall", depth=2)
        log.event("serve.alarm", interval=1, streak=1)
        log.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert [p["event"] for p in parsed] == ["serve.queue.stall", "serve.alarm"]
        assert all(p["schema"] == LOG_SCHEMA_VERSION for p in parsed)


class TestNoopAndGlobals:
    def test_noop_logger_swallows_everything(self):
        assert NOOP_LOGGER.event("not.even.registered", junk=1) == {}
        assert NOOP_LOGGER.records() == []
        assert len(NOOP_LOGGER) == 0
        assert not NOOP_LOGGER.enabled

    def test_logger_global_follows_enable_disable(self):
        assert obs.logger() is NOOP_LOGGER
        with obs.observed():
            live = obs.logger()
            assert live.enabled
            live.event("serve.queue.stall", depth=1)
            assert len(live) == 1
        assert obs.logger() is NOOP_LOGGER

    def test_enable_without_logging_keeps_noop(self):
        with obs.observed(with_logging=False):
            assert obs.logger() is NOOP_LOGGER

    def test_obs_log_module_not_shadowed(self):
        # The accessor is obs.logger(); repro.obs.log stays importable
        # as the module attribute.
        import repro.obs.log as log_module

        assert obs.log is log_module

"""TraceContext: deterministic ids, span trees, args flattening."""

from repro.obs.context import TraceContext, trace_args


class TestTraceContext:
    def test_ids_are_pure_functions_of_inputs(self):
        a = TraceContext.for_interval(2015, "dev-0003", 42)
        b = TraceContext.for_interval(2015, "dev-0003", 42)
        assert a == b
        assert len(a.trace_id) == 32
        assert len(a.span_id) == 16
        assert a.parent_id is None

    def test_distinct_inputs_distinct_traces(self):
        base = TraceContext.for_interval(2015, "dev-0003", 42)
        assert TraceContext.for_interval(2016, "dev-0003", 42) != base
        assert TraceContext.for_interval(2015, "dev-0004", 42) != base
        assert TraceContext.for_interval(2015, "dev-0003", 43) != base

    def test_child_links_to_parent(self):
        root = TraceContext.for_interval(7, "dev-0000", 0)
        child = root.child("score")
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id
        assert child.name == "score"
        # Same derivation twice -> same span id (reproducible tree).
        assert root.child("score") == child
        # Different stage name -> different span.
        assert root.child("alarm").span_id != child.span_id

    def test_grandchild_chains(self):
        root = TraceContext.for_interval(7, "dev-0000", 0)
        leaf = root.child("score").child("alarm")
        assert leaf.trace_id == root.trace_id
        assert leaf.parent_id == root.child("score").span_id


class TestTraceArgs:
    def test_flattens_ids_status_and_extras(self):
        ctx = TraceContext.for_interval(7, "dev-0000", 1).child("score")
        args = trace_args(ctx, status="anomalous", interval=1)
        assert args["trace_id"] == ctx.trace_id
        assert args["span_id"] == ctx.span_id
        assert args["parent_id"] == ctx.parent_id
        assert args["status"] == "anomalous"
        assert args["interval"] == 1

    def test_none_context_keeps_extras_only(self):
        args = trace_args(None, status="ok", interval=2)
        assert args == {"status": "ok", "interval": 2}

"""Tests for the event tracer and its Chrome trace-event export."""

import json

import pytest

from repro.obs.tracer import NOOP_TRACER, EventTracer, NoopTracer

#: Keys required of every Chrome trace event (plus "dur" for ph=X).
REQUIRED_KEYS = {"name", "ph", "ts", "pid", "tid"}


class TestRecording:
    def test_instant_event(self):
        tracer = EventTracer()
        tracer.instant("boundary", 10_000_000, category="sim", args={"i": 3})
        (event,) = tracer.events
        assert event["name"] == "boundary"
        assert event["ph"] == "i"
        assert event["ts"] == 10_000.0  # ns -> µs
        assert event["args"] == {"i": 3}

    def test_complete_event_has_duration(self):
        tracer = EventTracer()
        tracer.complete("interval", 0, 10_000_000)
        (event,) = tracer.events
        assert event["ph"] == "X"
        assert event["ts"] == 0.0
        assert event["dur"] == 10_000.0

    def test_counter_event(self):
        tracer = EventTracer()
        tracer.counter("queue", 5_000, {"depth": 7})
        (event,) = tracer.events
        assert event["ph"] == "C"
        assert event["args"] == {"depth": 7}

    def test_len_and_clear(self):
        tracer = EventTracer()
        tracer.instant("a", 0)
        tracer.instant("b", 1)
        assert len(tracer) == 2
        tracer.clear()
        assert len(tracer) == 0


class TestChromeSchema:
    def test_chrome_trace_is_valid_json_with_schema(self, tmp_path):
        tracer = EventTracer(process_name="repro-test")
        tracer.instant("interval.boundary", 10_000_000, args={"interval_index": 0})
        tracer.complete("monitoring.interval", 0, 10_000_000)
        tracer.counter("sim.queue_depth", 1_000, {"depth": 4})
        path = tmp_path / "trace.json"
        tracer.write_chrome(path)

        loaded = json.loads(path.read_text())
        assert isinstance(loaded["traceEvents"], list)
        assert loaded["displayTimeUnit"] == "ms"
        payload_events = [e for e in loaded["traceEvents"] if e["ph"] != "M"]
        assert len(payload_events) == 3
        for event in payload_events:
            assert REQUIRED_KEYS <= set(event)
            assert isinstance(event["ts"], (int, float))
            assert event["ph"] in {"i", "X", "C"}
            if event["ph"] == "X":
                assert isinstance(event["dur"], (int, float))
        metadata = [e for e in loaded["traceEvents"] if e["ph"] == "M"]
        assert metadata[0]["args"] == {"name": "repro-test"}

    def test_jsonl_round_trip(self, tmp_path):
        tracer = EventTracer()
        tracer.instant("a", 1_000)
        tracer.instant("b", 2_000)
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["name"] for line in lines] == ["a", "b"]

    def test_simulated_timestamps_preserve_order(self):
        tracer = EventTracer()
        for t in (5, 50, 500):
            tracer.instant("e", t * 1_000_000)
        stamps = [e["ts"] for e in tracer.events]
        assert stamps == sorted(stamps)
        assert stamps == [5_000.0, 50_000.0, 500_000.0]


class TestNoopTracer:
    def test_recording_is_inert(self):
        tracer = NoopTracer()
        tracer.instant("a", 0)
        tracer.complete("b", 0, 1)
        tracer.counter("c", 0, {"v": 1})
        assert len(tracer) == 0
        assert tracer.chrome_trace()["traceEvents"] == []

    def test_write_raises(self, tmp_path):
        with pytest.raises(RuntimeError, match="disabled"):
            NOOP_TRACER.write_chrome(tmp_path / "x.json")
        with pytest.raises(RuntimeError, match="disabled"):
            NOOP_TRACER.write_jsonl(tmp_path / "x.jsonl")

    def test_enabled_flags(self):
        assert EventTracer().enabled is True
        assert NoopTracer().enabled is False

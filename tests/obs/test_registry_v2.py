"""Registry v2: reservoir quantiles, labelled families, shard merge."""

import pytest

from repro.obs.registry import (
    DEFAULT_RESERVOIR_SIZE,
    Histogram,
    MetricsRegistry,
    NOOP_METRICS,
    labeled_name,
    log_buckets,
)


class TestLogBuckets:
    def test_geometric_coverage(self):
        bounds = log_buckets(10.0, 1_000.0, per_decade=2)
        assert bounds[0] == 10.0
        assert bounds[-1] >= 1_000.0
        ratios = [b / a for a, b in zip(bounds, bounds[1:])]
        assert all(abs(r - ratios[0]) < 1e-9 for r in ratios)

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 10.0)
        with pytest.raises(ValueError):
            log_buckets(10.0, 10.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 10.0, per_decade=0)


class TestReservoir:
    def test_memory_stays_flat_over_long_soak(self):
        # Satellite (b): the regression that motivated the reservoir —
        # raw-sample retention must be bounded no matter how many
        # observations land.
        hist = Histogram("soak", buckets=(1.0, 10.0, 100.0))
        for i in range(100_000):
            hist.observe(float(i % 1000))
        assert len(hist._samples) == DEFAULT_RESERVOIR_SIZE
        assert len(hist.bucket_counts) == 4  # 3 bounds + overflow
        assert hist.count == 100_000

    def test_exact_quantiles_below_reservoir_size(self):
        hist = Histogram("small", buckets=(1e9,))
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.estimate_quantile(0.0) == 1.0
        assert hist.estimate_quantile(1.0) == 100.0
        assert hist.estimate_quantile(0.5) == pytest.approx(50.5)

    def test_estimates_reasonable_beyond_reservoir_size(self):
        hist = Histogram("big", buckets=(1e9,))
        for value in range(10_000):
            hist.observe(float(value))
        p50 = hist.estimate_quantile(0.5)
        # Uniform subsample of a uniform stream: the median estimate
        # should land well inside the middle half.
        assert 2_500 < p50 < 7_500

    def test_reservoir_is_deterministic_per_name(self):
        def fill(name):
            hist = Histogram(name, buckets=(1e9,))
            for value in range(5_000):
                hist.observe(float(value))
            return list(hist._samples)

        assert fill("same") == fill("same")

    def test_quantiles_dict_shape(self):
        hist = Histogram("q", buckets=(1e9,))
        hist.observe(5.0)
        assert set(hist.quantiles()) == {"p50", "p95", "p99"}

    def test_empty_reservoir_falls_back_to_buckets(self):
        hist = Histogram("merged", buckets=(10.0, 20.0))
        hist.bucket_counts[0] = 4  # as if reconstructed from a snapshot
        hist.count = 4
        assert hist._samples == []
        assert hist.estimate_quantile(0.5) == 10.0

    def test_reservoir_size_validated(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(1.0,), reservoir_size=0)


class TestFamilies:
    def test_labeled_name_is_sorted_and_stable(self):
        assert labeled_name("m", {"b": 1, "a": "x"}) == 'm{a="x",b="1"}'
        assert labeled_name("m", {"a": "x", "b": 1}) == 'm{a="x",b="1"}'

    def test_children_are_memoised(self):
        registry = MetricsRegistry()
        family = registry.counter_family("serve.scored", ("shard",))
        child = family.labels(shard="0")
        assert family.labels(shard="0") is child
        child.inc(3)
        assert registry.get('serve.scored{shard="0"}').value == 3

    def test_child_snapshot_carries_labels_and_family(self):
        registry = MetricsRegistry()
        registry.gauge_family("depth", ("shard",)).labels(shard="2").set(9)
        snap = registry.snapshot()['depth{shard="2"}']
        assert snap["labels"] == {"shard": "2"}
        assert snap["family"] == "depth"

    def test_wrong_label_names_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter_family("serve.scored", ("shard",))
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(device="0")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter_family("f", ("shard",))
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge_family("f", ("shard",))

    def test_histogram_family_custom_buckets(self):
        registry = MetricsRegistry()
        family = registry.histogram_family("lat", ("shard",), buckets=(1.0, 2.0))
        assert family.labels(shard="0").bounds == (1.0, 2.0)

    def test_noop_families_share_singletons(self):
        family = NOOP_METRICS.counter_family("x", ("shard",))
        assert family.labels(shard="0") is family.labels(shard="1")
        family.labels(shard="0").inc()  # inert


class TestMergeSnapshot:
    def test_counters_add_gauges_overwrite(self):
        source = MetricsRegistry()
        source.counter("c").inc(5)
        source.gauge("g").set(3.0)
        target = MetricsRegistry()
        target.counter("c").inc(2)
        target.merge_snapshot(source.snapshot())
        assert target.counter("c").value == 7
        assert target.gauge("g").value == 3.0

    def test_histograms_merge_bucket_by_bucket(self):
        def build():
            registry = MetricsRegistry()
            hist = registry.histogram("h", buckets=(1.0, 2.0))
            for value in (0.5, 1.5, 9.0):
                hist.observe(value)
            return registry

        target = build()
        target.merge_snapshot(build().snapshot())
        merged = target.histogram("h", buckets=(1.0, 2.0))
        assert merged.count == 6
        assert merged.total == pytest.approx(22.0)
        assert merged.bucket_counts == [2, 2, 2]
        assert merged.min == 0.5 and merged.max == 9.0

    def test_bound_mismatch_raises(self):
        source = MetricsRegistry()
        source.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        target = MetricsRegistry()
        target.histogram("h", buckets=(1.0, 5.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket bounds differ"):
            target.merge_snapshot(source.snapshot())

    def test_labels_survive_the_merge(self):
        source = MetricsRegistry()
        source.counter_family("scored", ("shard",)).labels(shard="1").inc(4)
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        child = target.get('scored{shard="1"}')
        assert child.value == 4
        assert child.labels == {"shard": "1"}
        assert child.family == "scored"

    def test_merge_survives_json_round_trip(self):
        import json

        from repro.obs import to_jsonable

        source = MetricsRegistry()
        source.histogram("h", buckets=(1.0,)).observe(0.5)
        payload = json.loads(json.dumps(to_jsonable(source.snapshot())))
        target = MetricsRegistry()
        target.merge_snapshot(payload)
        assert target.histogram("h", buckets=(1.0,)).count == 1

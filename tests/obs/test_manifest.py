"""Tests for run provenance (RunInfo) and the shared JSON serialiser."""

import dataclasses
import json
import math

import numpy as np
import pytest

import repro
from repro import obs
from repro.obs.manifest import RunInfo, host_info, to_jsonable
from repro.sim.platform import PlatformConfig


class TestToJsonable:
    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.float64(2.5)) == 2.5
        assert to_jsonable(np.bool_(True)) is True

    def test_numpy_arrays_become_lists(self):
        assert to_jsonable(np.arange(3)) == [0, 1, 2]
        assert to_jsonable(np.array([[1.0, 2.0]])) == [[1.0, 2.0]]

    def test_non_finite_floats_are_stringified(self):
        assert to_jsonable(float("inf")) == "inf"
        assert to_jsonable(np.float64("nan")) == "nan"

    def test_dataclasses_and_tuples(self):
        @dataclasses.dataclass
        class Point:
            x: int
            label: str

        assert to_jsonable(Point(1, "a")) == {"x": 1, "label": "a"}
        assert to_jsonable((1, (2, 3))) == [1, [2, 3]]

    def test_platform_config_serialises(self):
        payload = to_jsonable(PlatformConfig(seed=7))
        json.dumps(payload)  # fully encodable
        assert payload["seed"] == 7
        assert payload["granularity"] == 2048
        assert isinstance(payload["tasks"], list)
        assert payload["tasks"][0]["name"]

    def test_everything_else_reprs(self):
        payload = to_jsonable(object())
        assert isinstance(payload, str) and "object" in payload


class TestHostInfo:
    def test_fields(self):
        info = host_info()
        assert set(info) >= {"platform", "machine", "python", "numpy", "cpu_count"}
        json.dumps(info)


class TestRunInfo:
    def test_collect_captures_version_and_metrics(self):
        with obs.observed() as (registry, _tracer):
            registry.counter("x").inc(5)
            info = RunInfo.collect(
                command="train",
                config=PlatformConfig(seed=3),
                seed=3,
                intervals=120,
                metrics=registry.snapshot(),
                detector_out="d.npz",
            )
        assert info.version == repro.__version__
        assert info.seed == 3
        assert info.intervals == 120
        assert info.metrics["x"]["value"] == 5
        assert info.extra["detector_out"] == "d.npz"
        assert info.config["seed"] == 3

    def test_write_and_read_round_trip(self, tmp_path):
        path = tmp_path / "manifest.json"
        info = RunInfo.collect(command="monitor", seed=1, intervals=10)
        info.write(path)
        loaded = RunInfo.read(path)
        assert loaded["command"] == "monitor"
        assert loaded["seed"] == 1
        assert loaded["host"]["python"] == host_info()["python"]
        assert math.isfinite(loaded["created_unix"])

    def test_manifest_is_valid_json_file(self, tmp_path):
        path = tmp_path / "m.json"
        RunInfo.collect(command="attack", config=PlatformConfig()).write(path)
        json.loads(path.read_text())

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def trained_detector_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "detector.npz"
    code = main(
        [
            "train",
            "--runs",
            "2",
            "--intervals",
            "60",
            "--validation",
            "60",
            "--restarts",
            "2",
            "--out",
            str(path),
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_scenario_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["attack", "--detector", "x", "--scenario", "nuke"]
            )


class TestCommands:
    def test_train_writes_detector(self, trained_detector_path, capsys):
        assert trained_detector_path.exists()

    def test_monitor_normal_run(self, trained_detector_path, capsys):
        code = main(
            [
                "monitor",
                "--detector",
                str(trained_detector_path),
                "--intervals",
                "40",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "intervals flagged" in captured.out

    def test_attack_scenarios(self, trained_detector_path, capsys):
        for scenario in ("app-launch", "shellcode", "rootkit"):
            code = main(
                [
                    "attack",
                    "--detector",
                    str(trained_detector_path),
                    "--scenario",
                    scenario,
                    "--pre",
                    "30",
                    "--during",
                    "30",
                ]
            )
            captured = capsys.readouterr()
            assert code == 0
            assert scenario in captured.out

    def test_heatmap(self, capsys):
        code = main(["heatmap", "--interval-index", "2", "--width", "64"])
        captured = capsys.readouterr()
        assert code == 0
        assert "AddrBase" in captured.out

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXIT_ALARM, EXIT_JOB_FAILURES, EXIT_OK, build_parser, main


@pytest.fixture(scope="module")
def trained_detector_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "detector.npz"
    code = main(
        [
            "train",
            "--runs",
            "2",
            "--intervals",
            "60",
            "--validation",
            "60",
            "--restarts",
            "2",
            "--out",
            str(path),
        ]
    )
    assert code == EXIT_OK
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_scenario_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["attack", "--detector", "x", "--scenario", "nuke"]
            )

    def test_usage_error_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["monitor"])  # missing --detector
        assert excinfo.value.code == 2


class TestCommands:
    def test_train_writes_detector(self, trained_detector_path, capsys):
        assert trained_detector_path.exists()

    def test_monitor_normal_run(self, trained_detector_path, capsys):
        code = main(
            [
                "monitor",
                "--detector",
                str(trained_detector_path),
                "--intervals",
                "40",
            ]
        )
        captured = capsys.readouterr()
        assert code == EXIT_OK
        assert "intervals flagged" in captured.out

    def test_attack_scenarios(self, trained_detector_path, capsys):
        for scenario in ("app-launch", "shellcode", "rootkit"):
            code = main(
                [
                    "attack",
                    "--detector",
                    str(trained_detector_path),
                    "--scenario",
                    scenario,
                    "--pre",
                    "30",
                    "--during",
                    "30",
                ]
            )
            captured = capsys.readouterr()
            # Exit 3 means the scenario raised an alarm — the expected
            # outcome for a detected attack; 0 means it went unnoticed.
            assert code in (EXIT_OK, EXIT_ALARM)
            assert scenario in captured.out
            assert "alarms" in captured.out

    def test_heatmap(self, capsys):
        code = main(["heatmap", "--interval-index", "2", "--width", "64"])
        captured = capsys.readouterr()
        assert code == EXIT_OK
        assert "AddrBase" in captured.out


class TestExitCodes:
    def test_shellcode_attack_raises_alarm(self, trained_detector_path, capsys):
        """The blatant attack must be detected -> exit 3 (EXIT_ALARM)."""
        code = main(
            [
                "attack",
                "--detector",
                str(trained_detector_path),
                "--scenario",
                "shellcode",
                "--pre",
                "20",
                "--during",
                "30",
            ]
        )
        capsys.readouterr()
        assert code == EXIT_ALARM

    def test_missing_detector_is_clean_error(self, capsys):
        code = main(["monitor", "--detector", "ghost.npz", "--intervals", "5"])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")

    def test_bad_trace_directory_fails_before_running(
        self, trained_detector_path, tmp_path, capsys
    ):
        code = main(
            [
                "monitor",
                "--detector",
                str(trained_detector_path),
                "--intervals",
                "5",
                "--trace",
                str(tmp_path / "nodir" / "t.json"),
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "does not exist" in captured.err

    def test_monitor_normal_is_exit_ok(self, trained_detector_path, capsys):
        code = main(
            [
                "monitor",
                "--detector",
                str(trained_detector_path),
                "--intervals",
                "30",
                "--alarm-consecutive",
                "5",
            ]
        )
        capsys.readouterr()
        assert code == EXIT_OK


class TestJsonOutput:
    def test_heatmap_json(self, capsys):
        code = main(["heatmap", "--interval-index", "1", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == EXIT_OK
        assert payload["command"] == "heatmap"
        assert payload["interval_index"] == 1
        assert len(payload["counts"]) == payload["spec"]["num_cells"]
        assert all(isinstance(c, int) for c in payload["counts"])

    def test_monitor_json(self, trained_detector_path, capsys):
        code = main(
            [
                "monitor",
                "--detector",
                str(trained_detector_path),
                "--intervals",
                "20",
                "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code in (EXIT_OK, EXIT_ALARM)
        assert payload["command"] == "monitor"
        assert payload["intervals"] == 20
        assert len(payload["log10_densities"]) == 20
        assert isinstance(payload["log10_threshold"], float)

    def test_attack_json(self, trained_detector_path, capsys):
        code = main(
            [
                "attack",
                "--detector",
                str(trained_detector_path),
                "--scenario",
                "shellcode",
                "--pre",
                "15",
                "--during",
                "20",
                "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "attack"
        assert payload["scenario"] == "shellcode"
        assert payload["attack_interval"] == 15
        if code == EXIT_ALARM:
            assert payload["alarms"]
            assert payload["first_alarm_interval"] >= payload["attack_interval"]


class TestObservabilityArtifacts:
    def test_monitor_trace_and_manifest(self, trained_detector_path, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        manifest = tmp_path / "metrics.json"
        code = main(
            [
                "monitor",
                "--detector",
                str(trained_detector_path),
                "--intervals",
                "10",
                "--trace",
                str(trace),
                "--metrics-out",
                str(manifest),
            ]
        )
        capsys.readouterr()
        assert code in (EXIT_OK, EXIT_ALARM)

        loaded = json.loads(trace.read_text())
        names = {e["name"] for e in loaded["traceEvents"]}
        assert "interval.boundary" in names
        assert "memometer.buffer_swap" in names
        boundaries = [
            e for e in loaded["traceEvents"] if e["name"] == "interval.boundary"
        ]
        assert len(boundaries) == 10
        # Simulated timestamps: interval i ends at (i+1) * 10 ms.
        assert boundaries[0]["ts"] == pytest.approx(10_000.0)

        data = json.loads(manifest.read_text())
        assert data["command"] == "monitor"
        assert data["intervals"] == 10
        assert data["metrics"]["monitor.intervals_scored"]["value"] == 10
        assert data["metrics"]["monitor.analysis_wall_us"]["count"] == 10
        assert data["extra"]["trace_events"] == len(loaded["traceEvents"]) - 1

    def test_attack_trace_contains_alarm_events(
        self, trained_detector_path, tmp_path, capsys
    ):
        trace = tmp_path / "attack.json"
        code = main(
            [
                "attack",
                "--detector",
                str(trained_detector_path),
                "--scenario",
                "shellcode",
                "--pre",
                "15",
                "--during",
                "20",
                "--trace",
                str(trace),
            ]
        )
        capsys.readouterr()
        assert code == EXIT_ALARM
        names = [e["name"] for e in json.loads(trace.read_text())["traceEvents"]]
        assert "monitor.alarm" in names
        assert "detector.verdict" in names

    def test_jsonl_trace_extension(self, trained_detector_path, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        main(
            [
                "monitor",
                "--detector",
                str(trained_detector_path),
                "--intervals",
                "5",
                "--trace",
                str(trace),
            ]
        )
        capsys.readouterr()
        lines = [json.loads(line) for line in trace.read_text().splitlines()]
        assert lines and all("name" in line and "ts" in line for line in lines)

    def test_train_manifest_has_phase_timings(self, tmp_path, capsys):
        manifest = tmp_path / "train.json"
        code = main(
            [
                "train",
                "--runs",
                "1",
                "--intervals",
                "30",
                "--validation",
                "30",
                "--restarts",
                "1",
                "--gaussians",
                "2",
                "--out",
                str(tmp_path / "d.npz"),
                "--metrics-out",
                str(manifest),
            ]
        )
        capsys.readouterr()
        assert code == EXIT_OK
        metrics = json.loads(manifest.read_text())["metrics"]
        for phase in ("collect.training", "collect.validation", "train.fit"):
            assert metrics[phase]["count"] >= 1
            assert metrics[phase]["total"] > 0.0

    def test_stats_renders_manifest(self, trained_detector_path, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        main(
            [
                "monitor",
                "--detector",
                str(trained_detector_path),
                "--intervals",
                "5",
                "--metrics-out",
                str(manifest),
            ]
        )
        capsys.readouterr()
        code = main(["stats", str(manifest)])
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert "run manifest" in out
        assert "monitor.intervals_scored" in out
        assert "counters" in out


class TestExperimentsFaultFlags:
    """The hardened-runner surface of ``repro experiments``: fault
    plans, retry limits, failure manifests, and exit code 4."""

    TINY = [
        "--scenario", "shellcode", "--no-cache",
        "--train-runs", "1", "--train-intervals", "20", "--validation", "20",
    ]

    @staticmethod
    def _kill_all_plan(tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(
            json.dumps(
                {
                    "seed": 0,
                    "sites": {
                        "runner.job": {"mode": "raise", "probability": 1.0}
                    },
                }
            )
        )
        return plan

    def test_clean_grid_exits_ok(self, capsys):
        code = main(["experiments", *self.TINY])
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert "1 of 1 jobs" in out

    def test_failed_jobs_exit_4_and_write_manifest(self, tmp_path, capsys):
        failures = tmp_path / "failures.json"
        code = main(
            [
                "experiments", *self.TINY,
                "--fault-plan", str(self._kill_all_plan(tmp_path)),
                "--max-retries", "0",
                "--failures-out", str(failures),
            ]
        )
        captured = capsys.readouterr()
        assert code == EXIT_JOB_FAILURES
        assert "FAILED" in captured.err
        manifest = json.loads(failures.read_text())
        assert manifest["failed"] == 1
        assert manifest["completed"] == 0
        assert manifest["failures"][0]["site"] == "runner.job"

    def test_fail_fast_also_exits_4(self, tmp_path, capsys):
        code = main(
            [
                "experiments", *self.TINY,
                "--fault-plan", str(self._kill_all_plan(tmp_path)),
                "--max-retries", "0", "--fail-fast",
            ]
        )
        capsys.readouterr()
        assert code == EXIT_JOB_FAILURES

    def test_json_report_carries_failures_and_retries(self, tmp_path, capsys):
        code = main(
            [
                "experiments", *self.TINY, "--json",
                "--fault-plan", str(self._kill_all_plan(tmp_path)),
                "--max-retries", "1",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == EXIT_JOB_FAILURES
        assert payload["retries"] == 1
        assert len(payload["failures"]) == 1
        assert payload["failures"][0]["attempts"] == 2

    def test_bad_fault_plan_is_usage_error(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({"sites": {"not.a.site": {"mode": "raise"}}}))
        code = main(["experiments", *self.TINY, "--fault-plan", str(plan)])
        capsys.readouterr()
        assert code == 2


class TestExitCodeEnum:
    """ExitCode is the single source of truth; values are frozen API."""

    def test_enum_values_are_stable(self):
        from repro.cli import ExitCode

        assert ExitCode.OK == 0
        assert ExitCode.IO_ERROR == 1
        assert ExitCode.USAGE == 2
        assert ExitCode.ALARM == 3
        assert ExitCode.JOB_FAILURES == 4
        assert ExitCode.BENCH_REGRESSION == 5
        assert ExitCode.SERVE_DEGRADED == 6
        assert ExitCode.MATRIX_DIVERGENCE == 7
        assert ExitCode.BUS_STALL == 8
        assert len(ExitCode) == 9

    def test_legacy_aliases_point_at_the_enum(self):
        from repro import cli

        assert cli.EXIT_OK is cli.ExitCode.OK
        assert cli.EXIT_USAGE is cli.ExitCode.USAGE
        assert cli.EXIT_ALARM is cli.ExitCode.ALARM
        assert cli.EXIT_JOB_FAILURES is cli.ExitCode.JOB_FAILURES
        assert cli.EXIT_BENCH_REGRESSION is cli.ExitCode.BENCH_REGRESSION
        assert cli.EXIT_SERVE_DEGRADED is cli.ExitCode.SERVE_DEGRADED
        assert cli.EXIT_MATRIX_DIVERGENCE is cli.ExitCode.MATRIX_DIVERGENCE

    def test_every_documented_code_is_in_the_docstring_table(self):
        """The module docstring documents each exit code it defines."""
        import repro.cli as cli

        for member in cli.ExitCode:
            assert f"``{member.value}``" in cli.__doc__, member

    def test_codes_are_ints_for_sys_exit(self):
        from repro.cli import ExitCode

        for member in ExitCode:
            assert isinstance(int(member), int)
            assert 0 <= member.value < 128


class TestMatrixCommand:
    """`repro matrix`: the conformance matrix as a CLI gate."""

    TINY = ["matrix", "--sizing", "tiny", "--no-cache"]

    def test_unknown_sizing_is_parse_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["matrix", "--sizing", "galactic"])

    def test_unknown_scenario_is_parse_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["matrix", "--scenario", "nuke"])

    def test_subset_json_run_is_conformant(self, tmp_path, capsys):
        out = tmp_path / "matrix.json"
        code = main(
            [
                *self.TINY, "--json", "--out", str(out),
                "--scenario", "slow-drift", "--scenario", "smm-shadow",
            ]
        )
        captured = capsys.readouterr()
        assert code == EXIT_OK
        payload = json.loads(captured.out)
        assert payload == json.loads(out.read_text())
        assert payload["conformant"] is True
        assert payload["scenarios"] == ["slow-drift", "smm-shadow"]
        assert len(payload["cells"]) == 2 * len(payload["detectors"])

    def test_table_output_lists_every_cell(self, capsys):
        code = main([*self.TINY, "--scenario", "smm-shadow"])
        captured = capsys.readouterr()
        assert code == EXIT_OK
        assert "conformance matrix" in captured.out
        for column in ("gmm-alarm", "gmm-interval", "drift", "fpr-budget"):
            assert column in captured.out
        assert "DIVERGED" not in captured.out


class TestServeCommand:
    TINY = [
        "serve", "--devices", "3", "--intervals", "6", "--seed", "11",
        "--train-runs", "1", "--train-intervals", "40",
        "--validation", "40",
    ]

    def _run(self, extra, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        code = main([*self.TINY, "--cache-dir", cache, *extra])
        return code, capsys.readouterr()

    def test_serve_exits_ok_and_renders_tables(self, tmp_path, capsys):
        code, captured = self._run([], tmp_path, capsys)
        assert code == EXIT_OK
        assert "fleet totals" in captured.out
        assert "dev-0000" in captured.out

    def test_serve_writes_report_and_fleet_report_renders_it(
        self, tmp_path, capsys
    ):
        out = tmp_path / "fleet.json"
        code, _ = self._run(["--report-out", str(out)], tmp_path, capsys)
        assert code == EXIT_OK
        payload = json.loads(out.read_text())
        assert payload["schema"] == 1
        assert payload["devices"] == 3
        assert payload["dropped"] == 0
        code = main(["fleet-report", str(out)])
        captured = capsys.readouterr()
        assert code == EXIT_OK
        assert "fleet digest" in captured.out

    def test_serve_json_output(self, tmp_path, capsys):
        code, captured = self._run(["--json"], tmp_path, capsys)
        assert code == EXIT_OK
        payload = json.loads(captured.out)
        assert payload["emitted"] == 18
        assert len(payload["device_reports"]) == 3

    def test_drop_policy_under_throttle_exits_degraded(
        self, tmp_path, capsys
    ):
        code, captured = self._run(
            [
                "--policy", "drop-oldest", "--capacity", "4",
                "--batch", "4", "--drain-per-step", "1",
            ],
            tmp_path, capsys,
        )
        from repro.cli import ExitCode

        assert code == ExitCode.SERVE_DEGRADED
        assert "dropped under" in captured.err

    def test_block_policy_under_throttle_exits_ok(self, tmp_path, capsys):
        code, _ = self._run(
            [
                "--policy", "block", "--capacity", "4", "--batch", "4",
                "--drain-per-step", "1",
            ],
            tmp_path, capsys,
        )
        assert code == EXIT_OK

    def test_duration_maps_to_intervals(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--duration", "0.5"])
        from repro.cli import _serve_intervals

        assert _serve_intervals(args) == 50  # 10 ms cadence

    def test_bad_profile_is_usage_error(self, tmp_path, capsys):
        code, captured = self._run(
            ["--profiles", "baseline,bogus"], tmp_path, capsys
        )
        assert code == 2
        assert "unknown device profile" in captured.err

    def test_more_shards_than_devices_is_usage_error(
        self, tmp_path, capsys
    ):
        code, captured = self._run(["--shards", "9"], tmp_path, capsys)
        assert code == 2

    def test_bad_fault_plan_is_usage_error(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({"sites": {"not.a.site": {"mode": "raise"}}}))
        code, captured = self._run(
            ["--fault-plan", str(plan)], tmp_path, capsys
        )
        assert code == 2
        assert "invalid fault plan" in captured.err

    def test_missing_fleet_report_is_io_error(self, capsys):
        code = main(["fleet-report", "ghost.json"])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")

    def test_invalid_fleet_report_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 99, "device_reports": []}))
        code = main(["fleet-report", str(bad)])
        captured = capsys.readouterr()
        assert code == 2
        assert "invalid fleet report" in captured.err


class TestServeAsyncCLI:
    """The async-executor flags added by the event-bus PR."""

    TINY = TestServeCommand.TINY
    _run = TestServeCommand._run

    def test_async_executor_exits_ok_and_records_bus(
        self, tmp_path, capsys
    ):
        out = tmp_path / "fleet.json"
        code, _ = self._run(
            ["--executor", "async", "--report-out", str(out)],
            tmp_path, capsys,
        )
        assert code == EXIT_OK
        payload = json.loads(out.read_text())
        assert payload["executor"] == "async"
        assert payload["bus"]["published"] > 0
        assert payload["bus"]["failures"] == []

    def test_cadences_with_async_executor(self, tmp_path, capsys):
        out = tmp_path / "fleet.json"
        code, _ = self._run(
            [
                "--executor", "async", "--cadences", "1,2",
                "--report-out", str(out),
            ],
            tmp_path, capsys,
        )
        assert code == EXIT_OK
        payload = json.loads(out.read_text())
        cadences = {d["cadence"] for d in payload["device_reports"]}
        assert cadences == {1, 2}

    def test_cadences_under_lockstep_is_usage_error(
        self, tmp_path, capsys
    ):
        code, captured = self._run(
            ["--cadences", "1,2"], tmp_path, capsys
        )
        assert code == 2
        assert "async" in captured.err

    def test_malformed_cadences_is_usage_error(self, tmp_path, capsys):
        code, captured = self._run(
            ["--executor", "async", "--cadences", "1,x"],
            tmp_path, capsys,
        )
        assert code == 2
        assert "--cadences" in captured.err

    def test_poisoned_subscriber_writes_failures_manifest(
        self, tmp_path, capsys
    ):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "seed": 5,
            "sites": {
                "subscriber.handle": {
                    "mode": "raise", "probability": 1.0,
                    "match": "reporting",
                },
            },
        }))
        failures_out = tmp_path / "failures.json"
        code, captured = self._run(
            [
                "--executor", "async", "--fault-plan", str(plan),
                "--failures-out", str(failures_out),
            ],
            tmp_path, capsys,
        )
        assert code == EXIT_OK
        failures = json.loads(failures_out.read_text())
        assert len(failures) == 1
        assert failures[0]["subscriber"] == "reporting"
        assert "poisoned subscriber" in captured.err

    def test_healthy_run_writes_empty_manifest_quietly(
        self, tmp_path, capsys
    ):
        failures_out = tmp_path / "failures.json"
        code, captured = self._run(
            ["--executor", "async", "--failures-out", str(failures_out)],
            tmp_path, capsys,
        )
        assert code == EXIT_OK
        assert json.loads(failures_out.read_text()) == []
        assert "poisoned" not in captured.err


class TestServeTelemetryCLI:
    """The observability surface added by the fleet-telemetry PR."""

    TINY = [
        "serve", "--devices", "3", "--intervals", "6", "--seed", "11",
        "--train-runs", "1", "--train-intervals", "40",
        "--validation", "40",
    ]

    def _run(self, extra, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        code = main([*self.TINY, "--cache-dir", cache, *extra])
        return code, capsys.readouterr()

    def test_log_flag_writes_structured_jsonl(self, tmp_path, capsys):
        log_path = tmp_path / "serve.jsonl"
        code, _ = self._run(["--log", str(log_path)], tmp_path, capsys)
        assert code == EXIT_OK
        records = [json.loads(l) for l in log_path.read_text().splitlines()]
        assert records[0]["event"] == "serve.start"
        assert records[-1]["event"] == "serve.report.ready"
        assert all("seq" in r and "component" in r for r in records)

    def test_health_out_is_ready_for_clean_run(self, tmp_path, capsys):
        health = tmp_path / "health.json"
        code, captured = self._run(["--health-out", str(health)], tmp_path, capsys)
        assert code == EXIT_OK
        summary = json.loads(health.read_text())
        assert summary["ready"] is True
        assert "NOT ready" not in captured.err

    def test_degraded_run_warns_on_stderr(self, tmp_path, capsys):
        health = tmp_path / "health.json"
        code, captured = self._run(
            [
                "--health-out", str(health),
                "--policy", "drop-oldest", "--capacity", "4",
                "--batch", "4", "--drain-per-step", "1",
            ],
            tmp_path, capsys,
        )
        summary = json.loads(health.read_text())
        assert summary["ready"] is False
        assert "health NOT ready" in captured.err
        assert "no_loss" in captured.err

    def test_metrics_out_prints_service_counter_footer(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        code, captured = self._run(["--metrics-out", str(metrics)], tmp_path, capsys)
        assert code == EXIT_OK
        assert "service telemetry" in captured.out
        assert "serve.shard.intervals_scored" in captured.out

    def test_metrics_dir_feeds_repro_top_once(self, tmp_path, capsys):
        snaps = tmp_path / "snaps"
        code, _ = self._run(
            [
                "--metrics-out", str(tmp_path / "m.json"),
                "--metrics-dir", str(snaps), "--metrics-interval", "3",
            ],
            tmp_path, capsys,
        )
        assert code == EXIT_OK
        assert list(snaps.glob("*.metrics.json"))
        code = main(["top", "--once", str(snaps)])
        captured = capsys.readouterr()
        assert code == EXIT_OK
        assert "repro top" in captured.out
        assert "shard" in captured.out
        assert "scored" in captured.out

    def test_top_on_empty_directory_renders_placeholder(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        code = main(["top", "--once", str(tmp_path / "empty")])
        captured = capsys.readouterr()
        assert code == EXIT_OK
        assert "no snapshots" in captured.out

    def test_stats_shows_service_counters_from_serve_manifest(
        self, tmp_path, capsys
    ):
        metrics = tmp_path / "metrics.json"
        code, _ = self._run(["--metrics-out", str(metrics)], tmp_path, capsys)
        assert code == EXIT_OK
        code = main(["stats", str(metrics)])
        captured = capsys.readouterr()
        assert code == EXIT_OK
        assert "service counters" in captured.out
        assert "serve.alarms" in captured.out or "serve.shard" in captured.out

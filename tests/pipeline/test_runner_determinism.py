"""Determinism guarantees of the parallel experiment runner.

The runner's contract: serial execution, parallel execution
(``--jobs 4``), and cache-warm re-execution of the same grid produce
**bit-identical** detector parameters, density series and verdicts.
Per-job seeds derive from ``SeedSequence.spawn`` at grid-build time,
so they are a pure function of the root seed and the job's grid
position — independent of worker count and scheduling order.

The grid here is deliberately tiny (a fraction of QUICK_SCALE): the
point is equality across execution strategies, not detection quality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pipeline.runner import (
    ExperimentJob,
    ExperimentRunner,
    TrainSpec,
    build_grid_jobs,
    expand_grid,
)
from repro.pipeline.stages import collect_training_data_cached
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.experiments import QUICK_SCALE
from repro.sim.platform import PlatformConfig

TINY_TRAIN = TrainSpec(
    runs=2, intervals_per_run=30, validation_intervals=30, base_seed=700
)


def _tiny_grid() -> list:
    detector = (("em_restarts", 1), ("seed", 0))
    return [
        ExperimentJob(
            name="shellcode-tiny",
            config=PlatformConfig(seed=7),
            train=TINY_TRAIN,
            scenario="shellcode",
            detector_params=detector,
            pre_intervals=8,
            attack_intervals=8,
            scenario_seed=77,
        ),
        ExperimentJob(
            name="app-launch-tiny",
            config=PlatformConfig(seed=7),
            train=TINY_TRAIN,
            scenario="app-launch",
            detector_params=detector,
            pre_intervals=8,
            attack_intervals=8,
            post_intervals=4,
            scenario_seed=78,
        ),
    ]


def _assert_bit_identical(left, right) -> None:
    """Every numeric artifact of two runs matches bit for bit."""
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.job.name == b.job.name
        # MHM-derived detector parameters: PCA basis, GMM parameters,
        # calibrated thresholds.
        assert sorted(a.detector_arrays) == sorted(b.detector_arrays)
        for name in a.detector_arrays:
            np.testing.assert_array_equal(
                a.detector_arrays[name], b.detector_arrays[name], strict=True
            )
        # Scored series and verdicts.
        np.testing.assert_array_equal(a.log10_densities, b.log10_densities, strict=True)
        assert a.log10_thresholds == b.log10_thresholds
        assert sorted(a.verdicts) == sorted(b.verdicts)
        for quantile in a.verdicts:
            np.testing.assert_array_equal(
                a.verdicts[quantile], b.verdicts[quantile], strict=True
            )
        np.testing.assert_array_equal(a.ground_truth, b.ground_truth)
        assert a.fingerprint() == b.fingerprint()


@pytest.fixture(scope="module")
def serial_results():
    return ExperimentRunner(jobs=1, use_cache=False).run(_tiny_grid())


class TestParallelEquivalence:
    def test_jobs_4_matches_serial(self, serial_results):
        parallel = ExperimentRunner(jobs=4, use_cache=False).run(_tiny_grid())
        _assert_bit_identical(serial_results, parallel)

    def test_worker_count_independence(self, serial_results):
        two = ExperimentRunner(jobs=2, use_cache=False).run(_tiny_grid())
        _assert_bit_identical(serial_results, two)

    def test_results_in_job_order(self, serial_results):
        names = [r.job.name for r in serial_results]
        assert names == [j.name for j in _tiny_grid()]


class TestCacheEquivalence:
    @pytest.fixture(scope="class")
    def cache_dir(self, tmp_path_factory):
        return tmp_path_factory.mktemp("runner-cache")

    @pytest.fixture(scope="class")
    def cold_results(self, cache_dir):
        return ExperimentRunner(jobs=1, cache_dir=cache_dir).run(_tiny_grid())

    def test_cold_run_matches_uncached(self, serial_results, cold_results):
        _assert_bit_identical(serial_results, cold_results)

    def test_warm_rerun_bit_identical_and_skips_stages(
        self, serial_results, cold_results, cache_dir
    ):
        warm = ExperimentRunner(jobs=1, cache_dir=cache_dir).run(_tiny_grid())
        _assert_bit_identical(serial_results, warm)
        # The cold run computed every stage at least once (the second
        # job legitimately reuses the first job's detector entry — the
        # grid shares one training spec); the warm one computed none.
        assert set(cold_results[0].computed_stages) == {
            "training",
            "detector",
            "scenario",
        }
        for result in cold_results:
            assert "scenario" in result.computed_stages
        # Cold compute time of the one job that actually trained.
        trained_seconds = cold_results[0].stage_seconds["detector"]
        for result in warm:
            assert result.computed_stages == ()
            assert sum(result.cache_hits.values()) > 0
            assert sum(result.cache_misses.values()) == 0
            # Simulation/training skipped: the warm "stage" is just an
            # entry load, far below the cold training compute.
            assert result.stage_seconds["detector"] < trained_seconds / 2
            assert "training" not in result.stage_seconds  # never entered

    def test_warm_parallel_matches_too(self, serial_results, cold_results, cache_dir):
        warm = ExperimentRunner(jobs=4, cache_dir=cache_dir).run(_tiny_grid())
        _assert_bit_identical(serial_results, warm)


class TestTrainingDataRoundTrip:
    def test_cached_mhm_traces_bit_identical(self, tmp_path):
        """The MHM matrices that come back from the cache equal the
        freshly simulated ones exactly (int64 counts, no quantisation)."""
        config = PlatformConfig(seed=7)
        kwargs = dict(
            runs=2, intervals_per_run=20, validation_intervals=15, base_seed=300
        )
        fresh, fresh_hit = collect_training_data_cached(config, **kwargs, cache=None)
        cache = ArtifactCache(tmp_path)
        cold, cold_hit = collect_training_data_cached(config, **kwargs, cache=cache)
        warm, warm_hit = collect_training_data_cached(config, **kwargs, cache=cache)
        assert (fresh_hit, cold_hit, warm_hit) == (False, False, True)
        for data in (cold, warm):
            np.testing.assert_array_equal(
                fresh.training.matrix(np.int64),
                data.training.matrix(np.int64),
                strict=True,
            )
            np.testing.assert_array_equal(
                fresh.validation.matrix(np.int64),
                data.validation.matrix(np.int64),
                strict=True,
            )
            assert [m.interval_index for m in fresh.training] == [
                m.interval_index for m in data.training
            ]


class TestSeedDerivation:
    def test_grid_seeds_reproducible(self):
        one = build_grid_jobs(["shellcode", "rootkit"], QUICK_SCALE, root_seed=5)
        two = build_grid_jobs(["shellcode", "rootkit"], QUICK_SCALE, root_seed=5)
        assert one == two

    def test_root_seed_changes_every_job_seed(self):
        one = build_grid_jobs(["shellcode"], QUICK_SCALE, root_seed=5)
        two = build_grid_jobs(["shellcode"], QUICK_SCALE, root_seed=6)
        assert one[0].train.base_seed != two[0].train.base_seed
        assert one[0].scenario_seed != two[0].scenario_seed

    def test_seeds_stable_under_grid_growth(self):
        """SeedSequence.spawn children are indexed, so adding replicas
        or scenarios never changes the seeds of earlier cells."""
        small = build_grid_jobs(["shellcode"], QUICK_SCALE, root_seed=0, replicas=1)
        large = build_grid_jobs(["shellcode"], QUICK_SCALE, root_seed=0, replicas=3)
        assert small[0].scenario_seed == large[0].scenario_seed
        assert small[0].train == large[0].train

    def test_replicas_get_distinct_scenario_seeds(self):
        jobs = build_grid_jobs(["shellcode"], QUICK_SCALE, root_seed=0, replicas=4)
        seeds = [j.scenario_seed for j in jobs]
        assert len(set(seeds)) == len(seeds)
        # ... but share one detector (same training spec + seed).
        assert len({j.train for j in jobs}) == 1
        assert len({j.detector_params for j in jobs}) == 1

    def test_config_points_get_distinct_training_seeds(self):
        jobs = build_grid_jobs(
            ["shellcode"],
            QUICK_SCALE,
            root_seed=0,
            config_axes={"granularity": [2048, 4096, 8192]},
        )
        assert len({j.train.base_seed for j in jobs}) == 3


class TestExpandGrid:
    def test_empty(self):
        assert expand_grid({}) == [{}]

    def test_deterministic_order(self):
        grid = expand_grid({"a": [1, 2], "b": ["x", "y"]})
        assert grid == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

"""Golden regression tests: frozen detector parameters and verdicts.

One fixed scenario/seed is run end to end and compared against a
committed JSON fixture — detector shape, calibrated thresholds, GMM
weights, the scored density series and the per-interval verdicts.  A
refactor that silently drifts any numeric output of the pipeline fails
here first, with a precise diff of *what* moved.

When a change intentionally alters numerics (e.g. a new PCA solver),
regenerate the fixtures and review the diff like any other code
change::

    python -m pytest tests/pipeline/test_golden.py --update-goldens
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.pipeline.runner import ExperimentJob, TrainSpec, run_job
from repro.sim.platform import PlatformConfig

FIXTURES = pathlib.Path(__file__).parent.parent / "fixtures"

#: The frozen scenario: tiny but full-pipeline (simulate, PCA, GMM,
#: threshold calibration, attack replay, verdicts).
GOLDEN_JOB = ExperimentJob(
    name="golden-shellcode",
    config=PlatformConfig(seed=7),
    train=TrainSpec(runs=2, intervals_per_run=30, validation_intervals=30, base_seed=700),
    scenario="shellcode",
    detector_params=(("em_restarts", 1), ("seed", 0)),
    pre_intervals=8,
    attack_intervals=8,
    scenario_seed=77,
)

GOLDEN_PATH = FIXTURES / "golden_shellcode_tiny.json"

#: Matching tolerance for floating-point payloads.  The fixture is
#: generated on the same BLAS/numpy stack the tests run on, so exact
#: equality is expected; the epsilon only forgives JSON round-tripping.
ATOL = 0.0


def _golden_payload() -> dict:
    result = run_job(GOLDEN_JOB, use_cache=False)
    return {
        "job": GOLDEN_JOB.name,
        "scenario": GOLDEN_JOB.scenario,
        "num_cells": result.num_cells,
        "num_eigenmemories": result.num_eigenmemories,
        "attack_interval": result.attack_interval,
        "gmm_weights": result.detector_arrays["gmm_weights"].tolist(),
        "pca_eigenvalues": result.detector_arrays["pca_eigenvalues"].tolist(),
        "log10_thresholds": {
            f"{q:g}": value for q, value in sorted(result.log10_thresholds.items())
        },
        "log10_densities": result.log10_densities.tolist(),
        "verdicts_theta_1": [int(v) for v in result.verdicts[1.0]],
        "fingerprint": result.fingerprint(),
    }


@pytest.fixture(scope="module")
def payload() -> dict:
    return _golden_payload()


def test_golden_shellcode(payload, update_goldens):
    if update_goldens:
        FIXTURES.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    assert GOLDEN_PATH.exists(), (
        "golden fixture missing — generate it with "
        "`pytest tests/pipeline/test_golden.py --update-goldens`"
    )
    golden = json.loads(GOLDEN_PATH.read_text())

    hint = "numerics drifted; if intentional, rerun with --update-goldens"
    assert payload["num_cells"] == golden["num_cells"], hint
    assert payload["num_eigenmemories"] == golden["num_eigenmemories"], hint
    assert payload["attack_interval"] == golden["attack_interval"], hint
    assert payload["verdicts_theta_1"] == golden["verdicts_theta_1"], hint
    np.testing.assert_allclose(
        payload["gmm_weights"], golden["gmm_weights"], rtol=0, atol=ATOL, err_msg=hint
    )
    np.testing.assert_allclose(
        payload["pca_eigenvalues"],
        golden["pca_eigenvalues"],
        rtol=0,
        atol=ATOL,
        err_msg=hint,
    )
    assert payload["log10_thresholds"] == golden["log10_thresholds"], hint
    np.testing.assert_allclose(
        payload["log10_densities"],
        golden["log10_densities"],
        rtol=0,
        atol=ATOL,
        err_msg=hint,
    )


def test_golden_fingerprint(payload, update_goldens):
    """The compact form of the same contract: one hash over detector
    parameters + densities + verdicts."""
    if update_goldens:
        pytest.skip("fixture being rewritten by test_golden_shellcode")
    golden = json.loads(GOLDEN_PATH.read_text())
    assert payload["fingerprint"] == golden["fingerprint"], (
        "pipeline output changed bit-for-bit; rerun with --update-goldens "
        "if the change is intentional"
    )


def test_golden_job_is_deterministic(payload):
    """Guards the guard: re-running the golden job in-process yields
    the identical payload, so a golden failure always means drift in
    the code, not nondeterminism in the test."""
    again = _golden_payload()
    assert again == payload

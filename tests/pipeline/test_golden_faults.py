"""Golden fault-campaign fixture: the failure manifest is frozen too.

A fixed tiny grid is run under a fixed seeded :class:`FaultPlan`; the
resulting failure manifest — which jobs die, at which sites, after how
many attempts, how many retries the run costs, and the fingerprints of
the surviving results — is compared against a committed JSON fixture.
A change that silently shifts fault *decisions* (hash function, token
convention, retry accounting) or survivor *numerics* fails here first.

Regenerate after an intentional change::

    python -m pytest tests/pipeline/test_golden_faults.py --update-goldens
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.faults import FaultPlan
from repro.pipeline.runner import ExperimentJob, ExperimentRunner, TrainSpec
from repro.sim.platform import PlatformConfig

FIXTURES = pathlib.Path(__file__).parent.parent / "fixtures"
GOLDEN_PATH = FIXTURES / "golden_faultplan_tiny.json"

#: The frozen campaign: four shellcode replicas under a mixed plan —
#: attempt-retryable job faults plus unconditional cache sabotage.
GOLDEN_GRID = [
    ExperimentJob(
        name=f"shellcode-g{i}",
        config=PlatformConfig(seed=7),
        train=TrainSpec(
            runs=1, intervals_per_run=20, validation_intervals=20, base_seed=700
        ),
        scenario="shellcode",
        detector_params=(("em_restarts", 1), ("seed", 0)),
        pre_intervals=4,
        attack_intervals=4,
        scenario_seed=170 + i,
    )
    for i in range(4)
]

GOLDEN_PLAN = {
    "seed": 11,
    "sites": {
        "runner.job": {"mode": "raise", "probability": 0.4},
        "stages.replay": {"mode": "raise", "probability": 0.2},
    },
}


def _campaign_payload() -> dict:
    runner = ExperimentRunner(
        jobs=1,
        use_cache=False,
        max_retries=1,
        backoff_base=0.01,
        fault_plan=FaultPlan.from_dict(GOLDEN_PLAN),
    )
    results = runner.run(GOLDEN_GRID)
    manifest = runner.failure_manifest()
    # Tracebacks carry absolute source paths — machine-specific, so
    # the frozen manifest keeps everything but them.
    for failure in manifest["failures"]:
        failure["traceback"] = "<elided>"
    return {
        "plan": GOLDEN_PLAN,
        "manifest": manifest,
        "survivors": {r.job.name: r.fingerprint() for r in results},
    }


@pytest.fixture(scope="module")
def payload() -> dict:
    return _campaign_payload()


def test_golden_fault_campaign(payload, update_goldens):
    if update_goldens:
        FIXTURES.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    assert GOLDEN_PATH.exists(), (
        "golden fault fixture missing — generate it with "
        "`pytest tests/pipeline/test_golden_faults.py --update-goldens`"
    )
    golden = json.loads(GOLDEN_PATH.read_text())

    assert payload["plan"] == golden["plan"], "the frozen plan itself changed"
    hint = (
        "fault decisions or retry accounting drifted; if intentional, "
        "rerun with --update-goldens"
    )
    manifest, frozen = payload["manifest"], golden["manifest"]
    assert manifest["failed"] == frozen["failed"], hint
    assert manifest["completed"] == frozen["completed"], hint
    assert manifest["retries"] == frozen["retries"], hint
    assert manifest["failures"] == frozen["failures"], hint
    assert manifest == frozen, hint
    assert payload["survivors"] == golden["survivors"], (
        "surviving results changed bit-for-bit; rerun with --update-goldens "
        "if the numeric change is intentional"
    )


def test_golden_campaign_kills_and_spares(payload):
    """Sanity on the fixture itself: the frozen plan must exercise both
    outcomes, or the golden pins nothing interesting."""
    manifest = payload["manifest"]
    assert manifest["failed"] >= 1
    assert manifest["completed"] >= 1
    assert manifest["retries"] >= 1


def test_golden_campaign_is_deterministic(payload):
    """A golden failure always means drift, not nondeterminism."""
    assert _campaign_payload() == payload

"""Graceful degradation of the online monitor under interval faults.

The paper's Memometer is double-buffered precisely so that losing one
interval's buffer never stalls monitoring.  This file pins the
software analogue: an interval whose MHM cannot be scored — an
injected ``monitor.verdict`` fault, a corrupted buffer, a non-finite
density — degrades to a logged SKIPPED verdict, and the stream, alarm
policy, and every *other* interval's verdict are untouched.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults, obs
from repro.faults import FaultPlan, FaultSpec
from repro.pipeline.monitoring import OnlineMonitor
from repro.sim.platform import Platform

WINDOW = 30


@pytest.fixture()
def make_monitor(quick_artifacts):
    def build() -> OnlineMonitor:
        platform = Platform(quick_artifacts.config.with_seed(4242))
        return OnlineMonitor(platform, quick_artifacts.detector, p_percent=1.0)

    return build


class TestSkippedVerdicts:
    def test_faulted_intervals_degrade_to_skipped(self, make_monitor):
        plan = FaultPlan(
            sites={"monitor.verdict": FaultSpec(mode="corrupt", probability=0.3)},
            seed=3,
        )
        monitor = make_monitor()
        with faults.injected(plan):
            report = monitor.monitor(WINDOW)
        assert report.intervals == WINDOW
        assert 0 < report.skipped < WINDOW
        assert report.skipped == len(report.skipped_intervals)
        assert report.scored == WINDOW - report.skipped
        # SKIPPED verdicts carry NaN densities and never flag.
        assert np.isnan(report.log_densities).sum() == report.skipped
        secure_core = monitor.platform.secure_core
        for result in secure_core.online_results:
            if result.skipped:
                assert np.isnan(result.log_density)
                assert not result.is_anomalous

    def test_non_skipped_verdicts_are_bit_identical_to_clean_run(
        self, make_monitor
    ):
        clean = make_monitor().monitor(WINDOW)
        plan = FaultPlan(
            sites={"monitor.verdict": FaultSpec(mode="corrupt", probability=0.3)},
            seed=3,
        )
        monitor = make_monitor()
        with faults.injected(plan):
            degraded = monitor.monitor(WINDOW)
        assert degraded.skipped > 0
        scored = ~np.isnan(degraded.log_densities)
        np.testing.assert_array_equal(
            degraded.log_densities[scored], clean.log_densities[scored]
        )

    def test_skip_decisions_are_seed_deterministic(self, make_monitor):
        plan_dict = {
            "seed": 3,
            "sites": {"monitor.verdict": {"mode": "corrupt", "probability": 0.3}},
        }
        skipped = []
        for _ in range(2):
            monitor = make_monitor()
            with faults.injected(FaultPlan.from_dict(plan_dict)):
                skipped.append(monitor.monitor(WINDOW).skipped_intervals)
        assert skipped[0] == skipped[1]

    def test_raise_mode_also_degrades_not_propagates(self, make_monitor):
        """Even a fault whose contract elsewhere is 'raise' must not
        escape the verdict loop: the monitor catches and skips."""
        plan = FaultPlan(
            sites={"monitor.verdict": FaultSpec(mode="raise", probability=0.2)},
            seed=1,
        )
        monitor = make_monitor()
        with faults.injected(plan):
            report = monitor.monitor(WINDOW)  # must not raise
        assert report.intervals == WINDOW
        assert report.skipped > 0

    def test_every_interval_faulted_still_survives(self, make_monitor):
        plan = FaultPlan(
            sites={"monitor.verdict": FaultSpec(mode="corrupt", probability=1.0)}
        )
        monitor = make_monitor()
        with faults.injected(plan):
            report = monitor.monitor(WINDOW)
        assert report.skipped == WINDOW
        assert report.scored == 0
        assert report.flag_rate == 0.0  # no scored intervals, no division
        assert report.alarms == []


class TestAlarmPolicyUnderSkips:
    def test_skips_do_not_feed_the_alarm_streak(self, make_monitor):
        """A skipped interval is not evidence of an attack: it must
        neither extend nor (by absence of a flag) be able to *complete*
        a consecutive-abnormal streak."""
        plan = FaultPlan(
            sites={"monitor.verdict": FaultSpec(mode="corrupt", probability=1.0)}
        )
        monitor = make_monitor()
        with faults.injected(plan):
            report = monitor.monitor(WINDOW)
        assert report.flagged == 0
        assert report.alarms == []


class TestSkipAccounting:
    def test_skip_counters_and_trace(self, make_monitor):
        plan = FaultPlan(
            sites={"monitor.verdict": FaultSpec(mode="corrupt", probability=0.3)},
            seed=3,
        )
        with obs.observed() as (registry, tracer):
            monitor = make_monitor()
            with faults.injected(plan):
                report = monitor.monitor(WINDOW)
            snapshot = registry.snapshot()
        assert snapshot["monitor.intervals_skipped"]["value"] == report.skipped
        assert (
            snapshot["securecore.verdicts_skipped"]["value"] == report.skipped
        )
        assert (
            snapshot["monitor.intervals_scored"]["value"]
            == WINDOW - report.skipped
        )
        skip_events = [
            e for e in tracer.events if e.get("name") == "monitor.skipped"
        ]
        assert len(skip_events) == report.skipped
        assert all("reason" in e["args"] for e in skip_events)

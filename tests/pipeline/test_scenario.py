"""Tests for the scenario runner."""

import numpy as np
import pytest

from repro.attacks import AppLaunchAttack, ShellcodeAttack
from repro.pipeline.scenario import ScenarioRunner
from repro.sim.platform import Platform, PlatformConfig


@pytest.fixture()
def runner(platform):
    return ScenarioRunner(platform)


class TestRun:
    def test_interval_accounting(self, runner):
        result = runner.run(
            AppLaunchAttack(), pre_intervals=10, attack_intervals=15, post_intervals=5
        )
        assert len(result.series) == 30
        assert result.attack_interval == 10
        assert result.revert_interval == 25

    def test_ground_truth_with_revert(self, runner):
        result = runner.run(
            AppLaunchAttack(), pre_intervals=5, attack_intervals=10, post_intervals=5
        )
        truth = result.ground_truth()
        assert truth.shape == (20,)
        assert not truth[:5].any()
        assert truth[5:16].all()
        assert not truth[16:].any()

    def test_ground_truth_without_revert(self, runner):
        result = runner.run(ShellcodeAttack(), pre_intervals=5, attack_intervals=10)
        truth = result.ground_truth()
        assert not truth[:5].any()
        assert truth[5:].all()

    def test_attack_actually_happened(self, runner, platform):
        runner.run(ShellcodeAttack(), pre_intervals=3, attack_intervals=3)
        assert not platform.kernel.aslr.enabled

    def test_events_have_timestamps_inside_interval(self, runner, platform):
        interval = platform.config.interval_ns
        result = runner.run(
            AppLaunchAttack(),
            pre_intervals=4,
            attack_intervals=4,
            post_intervals=2,
            inject_offset_fraction=0.5,
        )
        inject = result.event("inject")
        assert inject.time_ns == 4 * interval + interval // 2

    def test_unknown_event_raises(self, runner):
        result = runner.run(ShellcodeAttack(), pre_intervals=2, attack_intervals=2)
        with pytest.raises(KeyError):
            result.event("revert")
        assert result.revert_interval is None

    def test_irreversible_attack_cannot_have_post(self, runner):
        with pytest.raises(ValueError, match="not reversible"):
            runner.run(
                ShellcodeAttack(),
                pre_intervals=2,
                attack_intervals=2,
                post_intervals=2,
            )

    def test_invalid_counts(self, runner):
        with pytest.raises(ValueError):
            runner.run(AppLaunchAttack(), pre_intervals=-1, attack_intervals=5)
        with pytest.raises(ValueError):
            runner.run(AppLaunchAttack(), pre_intervals=1, attack_intervals=0)
        with pytest.raises(ValueError):
            runner.run(
                AppLaunchAttack(),
                pre_intervals=1,
                attack_intervals=1,
                inject_offset_fraction=1.0,
            )

    def test_series_continues_platform_history(self):
        platform = Platform(PlatformConfig(seed=5))
        platform.run_intervals(7)  # history before the scenario
        result = ScenarioRunner(platform).run(
            ShellcodeAttack(), pre_intervals=3, attack_intervals=3
        )
        assert len(result.series) == 6
        assert result.series[0].interval_index == 7

"""Hardened-runner behaviour: retries, timeouts, crashes, degradation.

The regression this file exists for: **one failed job used to abort
the whole grid** (the runner re-raised out of its result loop).  The
hardened contract is graceful degradation — completed results come
back, the failure lands in the manifest, and only ``fail_fast=True``
restores raise-on-first-failure semantics.
"""

from __future__ import annotations

import time

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.pipeline.runner import (
    ExperimentJob,
    ExperimentRunner,
    JobFailedError,
    TrainSpec,
)
from repro.sim.platform import PlatformConfig

TINY_TRAIN = TrainSpec(
    runs=1, intervals_per_run=20, validation_intervals=20, base_seed=700
)


def _grid(n: int = 3) -> list:
    return [
        ExperimentJob(
            name=f"shellcode-t{i}",
            config=PlatformConfig(seed=7),
            train=TINY_TRAIN,
            scenario="shellcode",
            detector_params=(("em_restarts", 1), ("seed", 0)),
            pre_intervals=4,
            attack_intervals=4,
            scenario_seed=70 + i,
        )
        for i in range(n)
    ]


def _kill_plan(job_name: str) -> FaultPlan:
    """A plan that permanently fails exactly one named job (every
    attempt: ``match`` selects on the job-name prefix of the token)."""
    return FaultPlan(
        sites={"runner.job": FaultSpec(mode="raise", match=f"{job_name}@")}
    )


class TestGracefulDegradation:
    def test_one_failed_job_no_longer_aborts_the_grid(self):
        """The headline regression: jobs t0 and t2 must come back even
        though t1 dies on every attempt."""
        runner = ExperimentRunner(
            jobs=1,
            use_cache=False,
            max_retries=1,
            backoff_base=0.01,
            fault_plan=_kill_plan("shellcode-t1"),
        )
        results = runner.run(_grid())
        assert [r.job.name for r in results] == ["shellcode-t0", "shellcode-t2"]
        assert [f.job_name for f in runner.job_failures] == ["shellcode-t1"]
        failure = runner.job_failures[0]
        assert failure.job_index == 1
        assert failure.attempts == 2  # initial + 1 retry
        assert failure.error_type == "FaultError"
        assert failure.site == "runner.job"

    def test_parallel_grid_degrades_identically(self):
        serial = ExperimentRunner(
            jobs=1, use_cache=False, max_retries=0,
            fault_plan=_kill_plan("shellcode-t1"),
        )
        serial.run(_grid())
        parallel = ExperimentRunner(
            jobs=3, use_cache=False, max_retries=0,
            fault_plan=_kill_plan("shellcode-t1"),
        )
        parallel.run(_grid())
        assert serial.failure_manifest() == parallel.failure_manifest()

    def test_manifest_shape(self):
        runner = ExperimentRunner(
            jobs=1, use_cache=False, max_retries=1, backoff_base=0.01,
            fault_plan=_kill_plan("shellcode-t0"),
        )
        runner.run(_grid(2))
        manifest = runner.failure_manifest()
        assert manifest["schema"] == 1
        assert manifest["total_jobs"] == 2
        assert manifest["completed"] == 1
        assert manifest["failed"] == 1
        assert manifest["retries"] == 1
        assert manifest["max_retries"] == 1
        entry = manifest["failures"][0]
        assert set(entry) == {
            "job_index", "job_name", "scenario", "attempts",
            "error_type", "message", "site", "traceback",
        }

    def test_write_failure_manifest_round_trips(self, tmp_path):
        import json

        runner = ExperimentRunner(
            jobs=1, use_cache=False, max_retries=0,
            fault_plan=_kill_plan("shellcode-t0"),
        )
        runner.run(_grid(2))
        path = runner.write_failure_manifest(tmp_path / "failures.json")
        assert json.loads(path.read_text()) == runner.failure_manifest()


class TestFailFast:
    def test_fail_fast_raises_job_failed_error(self):
        runner = ExperimentRunner(
            jobs=1, use_cache=False, max_retries=0, fail_fast=True,
            fault_plan=_kill_plan("shellcode-t1"),
        )
        with pytest.raises(JobFailedError) as excinfo:
            runner.run(_grid())
        assert excinfo.value.failure.job_name == "shellcode-t1"


class TestRetries:
    def test_attempt_scoped_fault_is_retried_to_success(self):
        """A fault matching only attempt 0 costs one retry per job it
        strikes and zero failures."""
        plan = FaultPlan(
            sites={"runner.job": FaultSpec(mode="raise", match="shellcode-t0@0")}
        )
        runner = ExperimentRunner(
            jobs=1, use_cache=False, max_retries=2, backoff_base=0.01,
            fault_plan=plan,
        )
        results = runner.run(_grid(2))
        assert len(results) == 2
        assert runner.job_failures == []
        assert runner.retries == 1

    def test_backoff_is_seeded_and_bounded(self):
        runner = ExperimentRunner(jobs=1, backoff_base=0.05, backoff_cap=0.4)
        waits = [runner._backoff_seconds("job-a", k) for k in range(8)]
        # Pure in (retry_seed, name, attempt): recomputing matches.
        assert waits == [runner._backoff_seconds("job-a", k) for k in range(8)]
        assert all(w <= 0.4 for w in waits)
        assert waits[0] >= 0.025  # base/2 floor at attempt 0
        other = ExperimentRunner(jobs=1, backoff_base=0.05, backoff_cap=0.4,
                                 retry_seed=1)
        assert waits != [other._backoff_seconds("job-a", k) for k in range(8)]


class TestTimeouts:
    """Timeout budgets here are deliberately generous: a parallel
    attempt's deadline starts at submission and therefore includes
    worker cold-start (interpreter + numpy import), and serial elapsed
    time stretches on loaded CI machines.  Innocent jobs (~0.4 s of
    compute) must sit far below the budget, faulted ones far above."""

    def test_serial_timeout_fails_the_slow_job(self):
        plan = FaultPlan(
            sites={
                "runner.job": FaultSpec(
                    mode="delay", delay_seconds=3.0, match="shellcode-t1@"
                )
            }
        )
        runner = ExperimentRunner(
            jobs=1, use_cache=False, max_retries=0, job_timeout=2.0,
            fault_plan=plan,
        )
        results = runner.run(_grid())
        assert [r.job.name for r in results] == ["shellcode-t0", "shellcode-t2"]
        assert [f.error_type for f in runner.job_failures] == ["JobTimeout"]

    def test_parallel_timeout_manifest_matches_serial(self):
        plan = FaultPlan(
            sites={
                "runner.job": FaultSpec(
                    mode="delay", delay_seconds=4.0, match="shellcode-t1@"
                )
            }
        )

        def campaign(jobs):
            runner = ExperimentRunner(
                jobs=jobs, use_cache=False, max_retries=0, job_timeout=2.5,
                fault_plan=plan,
            )
            runner.run(_grid(2))
            return runner.failure_manifest()

        assert campaign(jobs=1) == campaign(jobs=2)

    def test_timed_out_attempt_can_recover_on_retry(self):
        plan = FaultPlan(
            sites={
                "runner.job": FaultSpec(
                    mode="delay", delay_seconds=3.0, match="shellcode-t0@0"
                )
            }
        )
        runner = ExperimentRunner(
            jobs=1, use_cache=False, max_retries=1, backoff_base=0.01,
            job_timeout=2.0, fault_plan=plan,
        )
        results = runner.run(_grid(1))
        assert len(results) == 1
        assert runner.job_failures == []
        assert runner.retries == 1


class TestWorkerCrash:
    """``crash`` mode hard-kills the worker (``os._exit``); the runner
    must replace the broken pool and keep the rest of the grid alive.
    Parallel-only: a crash plan in-process would kill pytest itself."""

    def test_crashed_worker_is_replaced_and_grid_completes(self):
        """A hard worker death breaks the pool, which also fails any
        *other* attempt in flight at that moment (each is charged an
        attempt, per the documented semantics) — so bystanders need a
        retry budget to survive a neighbour's crash."""
        plan = FaultPlan(
            sites={"runner.job": FaultSpec(mode="crash", match="shellcode-t1@")}
        )
        runner = ExperimentRunner(
            jobs=2, use_cache=False, max_retries=2, backoff_base=0.01,
            fault_plan=plan,
        )
        results = runner.run(_grid())
        assert {r.job.name for r in results} == {"shellcode-t0", "shellcode-t2"}
        assert [f.job_name for f in runner.job_failures] == ["shellcode-t1"]
        assert runner.job_failures[0].error_type == "WorkerCrash"
        assert runner.job_failures[0].attempts == 3  # every attempt crashed

    def test_crash_on_first_attempt_only_recovers_via_retry(self):
        plan = FaultPlan(
            sites={"runner.job": FaultSpec(mode="crash", match="shellcode-t0@0")}
        )
        runner = ExperimentRunner(
            jobs=2, use_cache=False, max_retries=2, backoff_base=0.01,
            fault_plan=plan,
        )
        results = runner.run(_grid(2))
        assert {r.job.name for r in results} == {"shellcode-t0", "shellcode-t1"}
        assert runner.job_failures == []
        assert runner.retries >= 1


class TestSerialTimeoutSemantics:
    def test_fast_jobs_unaffected_by_budget(self):
        runner = ExperimentRunner(
            jobs=1, use_cache=False, max_retries=0, job_timeout=30.0
        )
        started = time.monotonic()
        results = runner.run(_grid(2))
        assert len(results) == 2
        assert runner.job_failures == []
        assert time.monotonic() - started < 30.0

"""Tests for the training-data collection protocol."""

import numpy as np
import pytest

from repro.pipeline.training import collect_training_data, train_detector
from repro.sim.platform import PlatformConfig


@pytest.fixture(scope="module")
def small_data():
    return collect_training_data(
        PlatformConfig(),
        runs=2,
        intervals_per_run=40,
        validation_intervals=40,
        base_seed=500,
    )


class TestCollection:
    def test_sizes(self, small_data):
        assert small_data.num_training == 80
        assert small_data.num_validation == 40

    def test_runs_are_independent_boots(self, small_data):
        """Run boundaries restart interval numbering (fresh boots)."""
        indices = [m.interval_index for m in small_data.training]
        assert indices[:40] == list(range(40))
        assert indices[40:] == list(range(40))

    def test_runs_differ_in_content(self, small_data):
        matrix = small_data.training.matrix()
        assert not np.array_equal(matrix[:40], matrix[40:])

    def test_validation_is_separate(self, small_data):
        training_matrix = small_data.training.matrix()
        validation_matrix = small_data.validation.matrix()
        assert not any(
            np.array_equal(validation_matrix[0], row) for row in training_matrix
        )

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            collect_training_data(runs=0)
        with pytest.raises(ValueError):
            collect_training_data(intervals_per_run=0)

    def test_deterministic_given_seed(self):
        config = PlatformConfig()
        a = collect_training_data(
            config, runs=1, intervals_per_run=10, validation_intervals=5, base_seed=7
        )
        b = collect_training_data(
            config, runs=1, intervals_per_run=10, validation_intervals=5, base_seed=7
        )
        np.testing.assert_array_equal(a.training.matrix(), b.training.matrix())


class TestTrainDetector:
    def test_paper_defaults(self, small_data):
        detector = train_detector(small_data, em_restarts=2, seed=0)
        assert detector.is_fitted
        assert detector.num_gaussians == 5
        assert detector.eigenmemory.retained_variance_ >= 0.9999
        # Thresholds came from the validation set.
        assert detector.thresholds.quantiles == [0.5, 1.0]

    def test_explicit_eigenmemory_count(self, small_data):
        detector = train_detector(
            small_data, num_eigenmemories=4, em_restarts=1, seed=0
        )
        assert detector.num_eigenmemories_ == 4

"""Robustness tests for the content-addressed artifact cache.

The cache must never turn corruption into a crash or a wrong answer:
a damaged entry is a *miss* (recompute and rewrite), concurrent
writers racing on one key can never interleave bytes, and ``clear``
removes only our namespace — even inside a shared cache root.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.pipeline.cache import (
    CACHE_NAMESPACE,
    ArtifactCache,
    default_cache_root,
)

STAGE = "unit"


@pytest.fixture()
def cache(tmp_path) -> ArtifactCache:
    return ArtifactCache(tmp_path / "cache")


def _arrays(seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    return {
        "matrix": rng.standard_normal((4, 6)),
        "counts": rng.integers(0, 100, size=8),
    }


class TestRoundTrip:
    def test_put_get(self, cache):
        arrays = _arrays()
        key = cache.key(STAGE, {"seed": 1})
        cache.put(STAGE, key, arrays)
        loaded = cache.get(STAGE, key)
        assert loaded is not None
        for name, value in arrays.items():
            np.testing.assert_array_equal(loaded[name], value)
            assert loaded[name].dtype == value.dtype

    def test_miss_on_unknown_key(self, cache):
        assert cache.get(STAGE, cache.key(STAGE, {"seed": 99})) is None
        assert cache.session_misses == {STAGE: 1}

    def test_fetch_memoises(self, cache):
        calls = []

        def compute():
            calls.append(1)
            return _arrays()

        first, hit1 = cache.fetch(STAGE, {"seed": 3}, compute)
        second, hit2 = cache.fetch(STAGE, {"seed": 3}, compute)
        assert (hit1, hit2) == (False, True)
        assert len(calls) == 1
        np.testing.assert_array_equal(first["matrix"], second["matrix"])


class TestKeys:
    def test_stable(self, cache):
        assert cache.key(STAGE, {"a": 1, "b": (2, 3)}) == cache.key(
            STAGE, {"a": 1, "b": (2, 3)}
        )

    def test_sensitive_to_material_stage_and_version(self, cache, monkeypatch):
        base = cache.key(STAGE, {"seed": 1})
        assert cache.key(STAGE, {"seed": 2}) != base
        assert cache.key("other-stage", {"seed": 1}) != base
        import repro

        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert cache.key(STAGE, {"seed": 1}) != base

    def test_config_dataclasses_are_hashable_material(self, cache):
        from repro.sim.platform import PlatformConfig

        one = cache.key(STAGE, {"config": PlatformConfig(seed=1)})
        two = cache.key(STAGE, {"config": PlatformConfig(seed=2)})
        assert one != two
        assert one == cache.key(STAGE, {"config": PlatformConfig(seed=1)})


class TestCorruption:
    """A damaged entry falls back to recompute — never a crash."""

    def _entry(self, cache):
        key = cache.key(STAGE, {"seed": 5})
        path = cache.put(STAGE, key, _arrays())
        return key, path

    def test_truncated_entry_is_a_miss_and_removed(self, cache):
        key, path = self._entry(cache)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        assert cache.get(STAGE, key) is None
        assert not path.exists()

    def test_bitflip_is_a_miss(self, cache):
        key, path = self._entry(cache)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert cache.get(STAGE, key) is None

    def test_foreign_file_is_a_miss(self, cache):
        key, path = self._entry(cache)
        path.write_bytes(b"not a cache entry at all")
        assert cache.get(STAGE, key) is None

    def test_empty_file_is_a_miss(self, cache):
        key, path = self._entry(cache)
        path.write_bytes(b"")
        assert cache.get(STAGE, key) is None

    def test_fetch_recomputes_after_corruption(self, cache):
        calls = []

        def compute():
            calls.append(1)
            return _arrays(7)

        _, hit = cache.fetch(STAGE, {"seed": 7}, compute)
        assert not hit
        path = cache.entry_path(STAGE, cache.key(STAGE, {"seed": 7}))
        path.write_bytes(b"garbage")
        arrays, hit = cache.fetch(STAGE, {"seed": 7}, compute)
        assert not hit and len(calls) == 2
        np.testing.assert_array_equal(arrays["matrix"], _arrays(7)["matrix"])
        # ... and the rewritten entry is valid again.
        _, hit = cache.fetch(STAGE, {"seed": 7}, compute)
        assert hit


class TestAtomicity:
    def test_concurrent_writers_never_interleave(self, cache):
        """Many threads racing on one key: every read sees a complete,
        checksum-valid entry (tmp file + atomic rename)."""
        key = cache.key(STAGE, {"seed": 11})
        errors = []

        def writer(thread_seed: int):
            try:
                for _ in range(10):
                    cache.put(STAGE, key, _arrays(thread_seed))
                    loaded = ArtifactCache(cache.root).get(STAGE, key)
                    assert loaded is not None, "reader saw a torn entry"
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # The winning entry decodes, and no temp files linger.
        assert cache.get(STAGE, key) is not None
        assert list(cache.dir.rglob("*.tmp")) == []


class TestMaintenance:
    def test_clear_removes_only_our_namespace(self, cache):
        cache.put(STAGE, cache.key(STAGE, {"seed": 1}), _arrays())
        foreign = cache.root / "someone-elses-file.txt"
        foreign.write_text("keep me")
        removed = cache.clear()
        assert removed == 1
        assert foreign.exists()
        assert not (cache.root / CACHE_NAMESPACE).exists()
        assert cache.stats()["entries"] == 0

    def test_stats_counts_entries_and_bytes(self, cache):
        for seed in range(3):
            cache.put(STAGE, cache.key(STAGE, {"seed": seed}), _arrays(seed))
        cache.put("other", cache.key("other", {"seed": 0}), _arrays())
        stats = cache.stats()
        assert stats["stages"][STAGE]["entries"] == 3
        assert stats["stages"]["other"]["entries"] == 1
        assert stats["entries"] == 4
        assert stats["bytes"] > 0

    def test_session_hit_miss_accounting(self, cache):
        key = cache.key(STAGE, {"seed": 1})
        cache.get(STAGE, key)
        cache.put(STAGE, key, _arrays())
        cache.get(STAGE, key)
        cache.get(STAGE, key)
        assert cache.session_misses == {STAGE: 1}
        assert cache.session_hits == {STAGE: 2}


class TestDefaultRoot:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "via-env"))
        assert default_cache_root() == tmp_path / "via-env"
        assert ArtifactCache().root == tmp_path / "via-env"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_root() == tmp_path / "xdg" / "repro"

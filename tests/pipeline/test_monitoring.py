"""Tests for online monitoring."""

import pytest

from repro.attacks import ShellcodeAttack
from repro.learn.detector import MhmDetector
from repro.pipeline.monitoring import OnlineMonitor
from repro.sim.platform import Platform


@pytest.fixture()
def monitored(quick_artifacts):
    platform = Platform(quick_artifacts.config.with_seed(4242))
    monitor = OnlineMonitor(platform, quick_artifacts.detector, p_percent=1.0)
    return platform, monitor


class TestConstruction:
    def test_unfitted_detector_rejected(self, quick_artifacts):
        platform = Platform(quick_artifacts.config)
        with pytest.raises(RuntimeError, match="fitted"):
            OnlineMonitor(platform, MhmDetector())

    def test_bad_consecutive_rejected(self, quick_artifacts):
        platform = Platform(quick_artifacts.config)
        with pytest.raises(ValueError):
            OnlineMonitor(
                platform, quick_artifacts.detector, consecutive_for_alarm=0
            )

    def test_double_attach_rejected(self, monitored):
        _, monitor = monitored
        monitor.attach()
        with pytest.raises(RuntimeError, match="attached"):
            monitor.attach()


class TestMonitoring:
    def test_normal_window_is_quiet(self, monitored):
        _, monitor = monitored
        report = monitor.monitor(40)
        assert report.intervals == 40
        assert report.flag_rate <= 0.1
        assert report.log_densities.shape == (40,)

    def test_attack_raises_alarm(self, monitored):
        platform, monitor = monitored
        monitor.monitor(20)
        ShellcodeAttack().inject(platform)
        report = monitor.monitor(30)
        assert report.flagged >= 10
        assert report.alarms
        assert report.first_alarm_interval() is not None

    def test_consecutive_policy_suppresses_singletons(self, quick_artifacts):
        platform = Platform(quick_artifacts.config.with_seed(4243))
        monitor = OnlineMonitor(
            platform,
            quick_artifacts.detector,
            p_percent=1.0,
            consecutive_for_alarm=3,
        )
        report = monitor.monitor(60)
        # Isolated normal-state flags never reach a 3-streak.
        assert len(report.alarms) == 0

    def test_analysis_fits_interval_budget(self, monitored):
        """Section 5.4's point: 358 us of analysis inside a 10 ms
        interval leaves the secure core mostly idle."""
        _, monitor = monitored
        report = monitor.monitor(10)
        assert 0.0 < report.analysis_budget_fraction < 0.2

    def test_detach_stops_scoring(self, monitored):
        platform, monitor = monitored
        monitor.monitor(5)
        monitor.detach()
        before = len(platform.secure_core.online_results)
        platform.run_intervals(5)
        assert len(platform.secure_core.online_results) == before

    def test_reports_do_not_overlap(self, monitored):
        _, monitor = monitored
        first = monitor.monitor(10)
        second = monitor.monitor(10)
        assert first.intervals == second.intervals == 10

"""Tests for the canonical experiment harness (quick scale)."""

import numpy as np
import pytest

from repro.pipeline.experiments import (
    PAPER_SCALE,
    QUICK_SCALE,
    get_reference_artifacts,
    run_app_launch_experiment,
    run_rootkit_experiment,
    run_shellcode_experiment,
)


class TestScales:
    def test_paper_scale_matches_section_5_2(self):
        assert PAPER_SCALE.total_training == 3000  # 10 x 300
        assert PAPER_SCALE.em_restarts == 10
        assert PAPER_SCALE.validation_intervals == 500

    def test_quick_scale_is_smaller(self):
        assert QUICK_SCALE.total_training < PAPER_SCALE.total_training


class TestArtifacts:
    def test_cached_between_calls(self, quick_artifacts):
        again = get_reference_artifacts(QUICK_SCALE)
        assert again is quick_artifacts

    def test_detector_trained_at_scale(self, quick_artifacts):
        assert quick_artifacts.data.num_training == QUICK_SCALE.total_training
        assert quick_artifacts.detector.is_fitted

    def test_cache_bypass(self, quick_artifacts):
        fresh = get_reference_artifacts(QUICK_SCALE, use_cache=False)
        assert fresh is not quick_artifacts


class TestOutcomes:
    @pytest.fixture(scope="class")
    def app_launch(self, quick_artifacts):
        return run_app_launch_experiment(quick_artifacts)

    def test_summary_fields(self, app_launch):
        summary = app_launch.summary()
        for key in (
            "scenario",
            "intervals",
            "attack_interval",
            "pre_fp_theta_1",
            "detection_rate_theta_1",
            "latency_theta_1",
        ):
            assert key in summary

    def test_density_arrays_aligned(self, app_launch):
        assert len(app_launch.log10_densities) == len(app_launch.scenario.series)
        assert app_launch.ground_truth.shape == app_launch.log10_densities.shape

    def test_flags_respect_threshold(self, app_launch):
        theta = app_launch.log10_thresholds[1.0]
        np.testing.assert_array_equal(
            app_launch.flags(1.0), app_launch.log10_densities < theta
        )

    def test_fpr_accounting(self, app_launch):
        start = app_launch.scenario.attack_interval
        manual = app_launch.flags(1.0)[:start].mean()
        assert app_launch.pre_attack_fpr(1.0) == pytest.approx(manual)

    def test_traffic_volumes_available(self, app_launch):
        volumes = app_launch.traffic_volumes()
        assert volumes.shape == app_launch.log10_densities.shape
        assert volumes.min() > 0

    def test_scenario_runs_on_unseen_seed(self, quick_artifacts):
        """The scenario platform seed is outside the training range."""
        outcome = run_shellcode_experiment(quick_artifacts, scenario_seed=777)
        assert outcome.scenario.name == "shellcode"

    def test_rootkit_outcome_has_load_interval(self, quick_artifacts):
        outcome = run_rootkit_experiment(quick_artifacts)
        load = outcome.scenario.attack_interval
        volumes = outcome.traffic_volumes()
        assert volumes[load] > 3 * np.median(volumes)

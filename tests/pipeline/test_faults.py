"""Deterministic fault campaigns against the experiment runner.

The acceptance contract of the fault-injection harness:

* **faults disabled** — pipeline outputs are bit-identical with no
  plan, an empty plan, and the pre-harness behaviour;
* **single-site campaigns** — for every injection site, a seeded plan
  produces bit-identical completed results *and* byte-identical
  failure manifests under serial and ``--jobs 4`` execution;
* **cache sabotage** — corrupted or truncated cache entries always
  degrade to a recompute whose results are bit-identical to a
  fault-free run: never a crash, never a torn result;
* **20 % failure-rate campaign** — the grid completes, and every
  surviving job's result is bit-identical to its fault-free twin.

When ``$REPRO_TEST_ARTIFACTS`` is set (the CI fault job sets it),
failure manifests produced here are published there so a red run
uploads the exact campaign evidence.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.pipeline.runner import ExperimentJob, ExperimentRunner, TrainSpec
from repro.sim.platform import PlatformConfig

from .test_runner_determinism import _assert_bit_identical

TINY_TRAIN = TrainSpec(
    runs=1, intervals_per_run=20, validation_intervals=20, base_seed=700
)
GRID_SIZE = 4


def _fault_grid() -> list:
    """GRID_SIZE shellcode replicas: one shared detector spec, distinct
    scenario seeds — small enough to run many campaign variants."""
    return [
        ExperimentJob(
            name=f"shellcode-t{i}",
            config=PlatformConfig(seed=7),
            train=TINY_TRAIN,
            scenario="shellcode",
            detector_params=(("em_restarts", 1), ("seed", 0)),
            pre_intervals=4,
            attack_intervals=4,
            scenario_seed=70 + i,
        )
        for i in range(GRID_SIZE)
    ]


def _seed_hitting_some(site: str, probability: float, attempt: int = 0) -> int:
    """A plan seed under which the campaign kills at least one job and
    spares at least one — found by scanning, never hard-coded, so the
    test survives hash-function-irrelevant grid edits."""
    names = [job.name for job in _fault_grid()]
    for seed in range(200):
        plan = FaultPlan(
            sites={site: FaultSpec(mode="raise", probability=probability)}, seed=seed
        )
        fires = [plan.would_fire(site, f"{name}@{attempt}") for name in names]
        if any(fires) and not all(fires):
            return seed
    raise AssertionError(f"no seed kills some-but-not-all jobs at {site}")


def _publish_manifest(manifest: dict, name: str) -> None:
    """Drop campaign evidence where CI uploads artifacts from."""
    artifact_dir = os.environ.get("REPRO_TEST_ARTIFACTS")
    if not artifact_dir:
        return
    path = Path(artifact_dir)
    path.mkdir(parents=True, exist_ok=True)
    (path / name).write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def clean_results():
    """The fault-free reference run every campaign is compared against."""
    return ExperimentRunner(jobs=1, use_cache=False).run(_fault_grid())


class TestDisabledEquivalence:
    def test_empty_plan_is_bit_identical_to_no_plan(self, clean_results):
        """Acceptance: with faults disabled, outputs match the
        pre-harness pipeline bit for bit."""
        with_empty = ExperimentRunner(
            jobs=1, use_cache=False, fault_plan=FaultPlan()
        ).run(_fault_grid())
        _assert_bit_identical(clean_results, with_empty)

    def test_zero_probability_plan_is_inert(self, clean_results):
        plan = FaultPlan(
            sites={
                site: FaultSpec(mode="raise", probability=0.0)
                for site in ("runner.job", "stages.fit", "stages.replay")
            }
        )
        runner = ExperimentRunner(jobs=1, use_cache=False, fault_plan=plan)
        _assert_bit_identical(clean_results, runner.run(_fault_grid()))
        assert runner.job_failures == [] and runner.retries == 0


class TestSingleSiteSerialParallelEquivalence:
    """For every raising site: serial and ``--jobs 4`` campaigns agree
    on *everything* — which jobs survive, their exact bits, and the
    exact failure manifest (messages and tracebacks included)."""

    @pytest.mark.parametrize("site", ["runner.job", "stages.fit", "stages.replay"])
    def test_campaign_identical_serial_vs_parallel(self, site, clean_results):
        seed = _seed_hitting_some(site, probability=0.5)
        plan = FaultPlan(
            sites={site: FaultSpec(mode="raise", probability=0.5)}, seed=seed
        )

        def campaign(jobs):
            runner = ExperimentRunner(
                jobs=jobs, use_cache=False, max_retries=0, fault_plan=plan
            )
            return runner.run(_fault_grid()), runner.failure_manifest()

        serial_results, serial_manifest = campaign(jobs=1)
        parallel_results, parallel_manifest = campaign(jobs=4)
        _publish_manifest(serial_manifest, f"failures-{site.replace('.', '-')}.json")

        assert serial_manifest == parallel_manifest
        assert 0 < serial_manifest["failed"] < GRID_SIZE
        for failure in serial_manifest["failures"]:
            assert failure["error_type"] == "FaultError"
            assert failure["site"] == site
            assert failure["traceback"]  # formatted at the raise site
        _assert_bit_identical(serial_results, parallel_results)

        # Survivors are untouched: bit-identical to the fault-free run.
        clean_by_name = {r.job.name: r for r in clean_results}
        for result in serial_results:
            _assert_bit_identical([clean_by_name[result.job.name]], [result])


class TestCacheSabotage:
    """Damaged cache entries must always mean *recompute*, never a
    crash or a torn result — under serial and parallel execution."""

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_corrupt_reads_recompute_bit_identically(
        self, jobs, clean_results, tmp_path
    ):
        # Warm the cache cleanly first so every read would have hit.
        warm_dir = tmp_path / f"cache-{jobs}"
        ExperimentRunner(jobs=1, cache_dir=warm_dir).run(_fault_grid())

        plan = FaultPlan(
            sites={"cache.read": FaultSpec(mode="corrupt", probability=1.0)}
        )
        runner = ExperimentRunner(jobs=jobs, cache_dir=warm_dir, fault_plan=plan)
        sabotaged = runner.run(_fault_grid())

        assert runner.job_failures == []
        _assert_bit_identical(clean_results, sabotaged)
        # Every stage read was damaged, so nothing can have hit.
        for result in sabotaged:
            assert sum(result.cache_hits.values()) == 0
            assert sum(result.cache_misses.values()) > 0

    def test_truncated_writes_poison_only_the_entry(self, clean_results, tmp_path):
        plan = FaultPlan(
            sites={"cache.write": FaultSpec(mode="truncate", probability=1.0)}
        )
        cache_dir = tmp_path / "cache"
        cold = ExperimentRunner(jobs=1, cache_dir=cache_dir, fault_plan=plan).run(
            _fault_grid()
        )
        # The run itself is unharmed: results come from the in-memory
        # computation, not the (sabotaged) stored entries.
        _assert_bit_identical(clean_results, cold)

        # A later clean run finds only checksum-failing entries: every
        # one degrades to a miss + recompute, bit-identical again.
        rerun_runner = ExperimentRunner(jobs=1, cache_dir=cache_dir)
        rerun = rerun_runner.run(_fault_grid())
        _assert_bit_identical(clean_results, rerun)
        # The first job saw only truncated entries; later jobs may hit
        # the *fresh* shared-detector entry the first one rewrote, but
        # every per-job scenario entry was poisoned, so every job
        # recomputed its scenario.
        assert sum(rerun[0].cache_hits.values()) == 0
        for result in rerun:
            assert "scenario" in result.computed_stages

    def test_corruption_counters_account_the_damage(self, tmp_path):
        from repro import obs

        cache_dir = tmp_path / "cache"
        ExperimentRunner(jobs=1, cache_dir=cache_dir).run(_fault_grid()[:1])
        plan = FaultPlan(
            sites={"cache.read": FaultSpec(mode="corrupt", probability=1.0)}
        )
        with obs.observed() as (registry, _):
            ExperimentRunner(jobs=1, cache_dir=cache_dir, fault_plan=plan).run(
                _fault_grid()[:1]
            )
            snapshot = registry.snapshot()
        corrupt_counts = {
            name: entry["value"]
            for name, entry in snapshot.items()
            if name.startswith("cache.") and name.endswith(".corrupt")
        }
        assert sum(corrupt_counts.values()) > 0


class TestTwentyPercentCampaign:
    """The ISSUE's acceptance drill: a 20 % failure-rate fault plan
    over the grid completes, and every surviving job's result is
    bit-identical to a fault-free run."""

    def test_grid_survives_and_survivors_are_exact(self, clean_results):
        seed = _seed_hitting_some("runner.job", probability=0.2)
        plan = FaultPlan(
            sites={"runner.job": FaultSpec(mode="raise", probability=0.2)},
            seed=seed,
        )

        def campaign(jobs):
            runner = ExperimentRunner(
                jobs=jobs, use_cache=False, max_retries=0, fault_plan=plan
            )
            return runner.run(_fault_grid()), runner.failure_manifest()

        results, manifest = campaign(jobs=1)
        _publish_manifest(manifest, "failures-20pct.json")

        assert manifest["failed"] >= 1
        assert manifest["completed"] == len(results)
        assert manifest["completed"] + manifest["failed"] == GRID_SIZE

        clean_by_name = {r.job.name: r for r in clean_results}
        for result in results:
            _assert_bit_identical([clean_by_name[result.job.name]], [result])

        parallel_results, parallel_manifest = campaign(jobs=4)
        assert parallel_manifest == manifest
        _assert_bit_identical(results, parallel_results)

    def test_retries_rescue_the_campaign(self, clean_results):
        """With retries enabled, a fault that only strikes attempt 0
        costs retries but zero failures — and the rescued results are
        still bit-identical."""
        names = [job.name for job in _fault_grid()]
        seed = next(
            s
            for s in range(500)
            if (
                plan := FaultPlan(
                    sites={
                        "runner.job": FaultSpec(mode="raise", probability=0.3)
                    },
                    seed=s,
                )
            )
            and any(plan.would_fire("runner.job", f"{n}@0") for n in names)
            and not any(plan.would_fire("runner.job", f"{n}@1") for n in names)
        )
        plan = FaultPlan(
            sites={"runner.job": FaultSpec(mode="raise", probability=0.3)},
            seed=seed,
        )
        runner = ExperimentRunner(
            jobs=1,
            use_cache=False,
            max_retries=2,
            backoff_base=0.01,
            fault_plan=plan,
        )
        results = runner.run(_fault_grid())
        assert runner.job_failures == []
        assert runner.retries >= 1
        _assert_bit_identical(clean_results, results)

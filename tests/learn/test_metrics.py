"""Tests for detection metrics."""

import numpy as np
import pytest

from repro.learn.metrics import (
    ConfusionCounts,
    auc,
    confusion_from_flags,
    detection_latency,
    false_positive_rate,
    roc_auc_from_scores,
    roc_curve,
    true_positive_rate,
)


class TestConfusion:
    def test_counts(self):
        flags = np.array([True, True, False, False, True])
        truth = np.array([True, False, True, False, True])
        counts = confusion_from_flags(flags, truth)
        assert counts.true_positives == 2
        assert counts.false_positives == 1
        assert counts.false_negatives == 1
        assert counts.true_negatives == 1
        assert counts.total == 5

    def test_rates(self):
        counts = ConfusionCounts(
            true_positives=8, false_positives=2, true_negatives=18, false_negatives=2
        )
        assert counts.true_positive_rate == pytest.approx(0.8)
        assert counts.false_positive_rate == pytest.approx(0.1)
        assert counts.precision == pytest.approx(0.8)
        assert counts.accuracy == pytest.approx(26 / 30)

    def test_degenerate_rates(self):
        counts = ConfusionCounts(0, 0, 0, 0)
        assert counts.false_positive_rate == 0.0
        assert counts.true_positive_rate == 0.0
        assert counts.accuracy == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_from_flags(np.array([True]), np.array([True, False]))

    def test_helper_functions(self):
        flags = np.array([True, False, True, False])
        truth = np.array([True, True, False, False])
        assert true_positive_rate(flags, truth) == pytest.approx(0.5)
        assert false_positive_rate(flags, truth) == pytest.approx(0.5)


class TestRoc:
    def test_perfect_separation(self):
        scores = np.array([0.1, 0.2, 0.9, 0.8])
        truth = np.array([False, False, True, True])
        assert roc_auc_from_scores(scores, truth) == pytest.approx(1.0)

    def test_inverted_scores(self):
        scores = np.array([0.9, 0.8, 0.1, 0.2])
        truth = np.array([False, False, True, True])
        assert roc_auc_from_scores(scores, truth) == pytest.approx(0.0)

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        scores = rng.uniform(size=5000)
        truth = rng.uniform(size=5000) > 0.5
        assert roc_auc_from_scores(scores, truth) == pytest.approx(0.5, abs=0.03)

    def test_curve_endpoints(self):
        scores = np.array([0.1, 0.9, 0.5, 0.4])
        truth = np.array([False, True, True, False])
        fpr, tpr = roc_curve(scores, truth)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_monotone_curve(self):
        rng = np.random.default_rng(1)
        scores = rng.normal(size=200)
        truth = rng.uniform(size=200) > 0.5
        fpr, tpr = roc_curve(scores, truth)
        assert (np.diff(fpr) >= 0).all()
        assert (np.diff(tpr) >= 0).all()

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="both"):
            roc_curve(np.array([0.1, 0.2]), np.array([True, True]))

    def test_auc_of_diagonal(self):
        line = np.linspace(0, 1, 11)
        assert auc(line, line) == pytest.approx(0.5)


class TestDetectionLatency:
    def test_immediate_detection(self):
        flags = np.array([False, False, True, True])
        assert detection_latency(flags, attack_start_index=2) == 0

    def test_delayed_detection(self):
        flags = np.array([False, False, False, False, True])
        assert detection_latency(flags, attack_start_index=2) == 2

    def test_never_detected(self):
        flags = np.zeros(5, dtype=bool)
        assert detection_latency(flags, attack_start_index=1) == -1

    def test_pre_attack_flags_ignored(self):
        flags = np.array([True, False, False, True])
        assert detection_latency(flags, attack_start_index=2) == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            detection_latency(np.zeros(3, dtype=bool), attack_start_index=4)

"""Tests for the multivariate Gaussian utilities."""

import numpy as np
import pytest
from scipy import stats

from repro.learn.gaussian import (
    mvn_logpdf,
    mvn_logpdf_from_cholesky,
    regularized_cholesky,
)


class TestRegularizedCholesky:
    def test_already_positive_definite(self):
        cov = np.array([[2.0, 0.3], [0.3, 1.0]])
        factor = regularized_cholesky(cov, ridge=0.0 + 1e-12)
        np.testing.assert_allclose(factor @ factor.T, cov, atol=1e-6)

    def test_singular_matrix_regularized(self):
        cov = np.ones((3, 3))  # rank 1
        factor = regularized_cholesky(cov, ridge=1e-6)
        assert np.isfinite(factor).all()
        assert (np.diag(factor) > 0).all()

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            regularized_cholesky(np.ones((2, 3)))

    def test_escalating_ridge(self):
        """A (slightly) negative-definite input still factorises."""
        cov = np.array([[1.0, 0.0], [0.0, -1e-9]])
        factor = regularized_cholesky(cov, ridge=1e-8)
        assert np.isfinite(factor).all()


class TestLogPdf:
    def test_matches_scipy_isotropic(self):
        rng = np.random.default_rng(0)
        mean = rng.normal(size=4)
        cov = np.eye(4) * 2.5
        x = rng.normal(size=(20, 4))
        expected = stats.multivariate_normal(mean=mean, cov=cov).logpdf(x)
        np.testing.assert_allclose(mvn_logpdf(x, mean, cov), expected, atol=1e-8)

    def test_matches_scipy_full_covariance(self):
        rng = np.random.default_rng(1)
        mean = rng.normal(size=3)
        a = rng.normal(size=(3, 3))
        cov = a @ a.T + 0.5 * np.eye(3)
        x = rng.normal(size=(50, 3))
        expected = stats.multivariate_normal(mean=mean, cov=cov).logpdf(x)
        np.testing.assert_allclose(mvn_logpdf(x, mean, cov), expected, atol=1e-7)

    def test_single_point(self):
        value = mvn_logpdf(np.zeros(2), np.zeros(2), np.eye(2))
        expected = -np.log(2 * np.pi)  # standard normal at the mean
        np.testing.assert_allclose(value, [expected])

    def test_density_maximised_at_mean(self):
        mean = np.array([1.0, -2.0])
        cov = np.diag([0.5, 2.0])
        at_mean = mvn_logpdf(mean, mean, cov)[0]
        rng = np.random.default_rng(2)
        for _ in range(20):
            elsewhere = mean + rng.normal(size=2)
            assert mvn_logpdf(elsewhere, mean, cov)[0] <= at_mean

    def test_cholesky_variant_consistent(self):
        rng = np.random.default_rng(3)
        mean = rng.normal(size=3)
        a = rng.normal(size=(3, 3))
        cov = a @ a.T + np.eye(3)
        x = rng.normal(size=(10, 3))
        factor = np.linalg.cholesky(cov)
        np.testing.assert_allclose(
            mvn_logpdf_from_cholesky(x, mean, factor),
            stats.multivariate_normal(mean=mean, cov=cov).logpdf(x),
            atol=1e-8,
        )

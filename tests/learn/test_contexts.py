"""ContextDetector unit tests: fit, both channels, persistence.

The second modality's contract in hand-checkable sizes: a tiny
periodic "task set" emits per-interval syscall count vectors with a
known hyperperiod, the detector learns its contexts and phase means,
and every fitted attribute round-trips bit-exactly through
``to_arrays``/``from_arrays`` and ``save``/``load``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.learn.contexts import ContextDetector, cluster_contexts, sort_rows

pytestmark = [pytest.mark.contexts]

HYPERPERIOD = 4
DIM = 6


def make_run(seed: int, intervals: int = 40) -> np.ndarray:
    """One clean boot: a periodic base pattern plus small count noise."""
    rng = np.random.default_rng(seed)
    pattern = np.random.default_rng(2024).integers(
        2, 20, size=(HYPERPERIOD, DIM)
    )
    phases = np.arange(intervals) % HYPERPERIOD
    noise = rng.integers(0, 3, size=(intervals, DIM))
    return (pattern[phases] + noise).astype(np.int64)


@pytest.fixture(scope="module")
def fitted() -> ContextDetector:
    runs = [make_run(seed) for seed in (1, 2, 3)]
    detector = ContextDetector(
        num_contexts=3, hyperperiod=HYPERPERIOD, seed=0
    )
    return detector.fit(runs, make_run(99))


class TestFit:
    def test_all_fitted_attributes_set(self, fitted):
        assert fitted.is_fitted
        assert fitted.centers_.shape == (3, DIM)
        assert fitted.scales_.shape == (3,)
        assert np.all(fitted.scales_ >= fitted.scale_floor)
        assert set(fitted.thresholds_) == set(fitted.quantiles)
        assert fitted.phase_sums_.shape == (HYPERPERIOD, DIM)
        assert fitted.phase_counts_.sum() == 3 * 40
        assert fitted.drift_bound_ > fitted.clean_drift_max_

    def test_phase_means_are_exact_per_phase_averages(self, fitted):
        runs = [make_run(seed) for seed in (1, 2, 3)]
        stacked = np.vstack(runs)
        phases = np.tile(np.arange(40) % HYPERPERIOD, 3)
        for phase in range(HYPERPERIOD):
            expected = stacked[phases == phase].mean(axis=0)
            np.testing.assert_array_equal(
                fitted.phase_means_[phase], expected
            )

    def test_calibration_set_flag_rate_within_budget(self, fitted):
        # θ_p is the (100-p)-quantile of the validation scores, so the
        # validation stream itself flags at most p percent — up to the
        # one-interval granularity a 40-sample quantile can resolve.
        scores = fitted.score_series(make_run(99))
        for p in fitted.quantiles:
            rate = float(fitted.flag_scores(scores, p).mean())
            assert rate <= p / 100.0 + 1.0 / scores.size

    def test_clean_drift_stays_under_bound(self, fitted):
        for seed in (1, 2, 3, 99):
            assert not fitted.drift_exceeded(make_run(seed))


class TestScoreChannel:
    def test_outlier_intervals_score_above_threshold(self, fitted):
        clean = make_run(7)
        hot = clean.copy()
        hot[::2] += 60  # a syscall mix far from every learned context
        flags = fitted.classify_series(hot, p_percent=1.0)
        assert flags[::2].all()

    def test_scores_are_finite_and_nonnegative(self, fitted):
        scores = fitted.score_series(make_run(11))
        assert np.all(np.isfinite(scores)) and np.all(scores >= 0)

    def test_empty_series(self, fitted):
        assert fitted.score_series(np.zeros((0, DIM))).size == 0
        assert fitted.drift_series(np.zeros((0, DIM))).size == 0
        assert not fitted.drift_exceeded(np.zeros((0, DIM)))

    def test_threshold_unknown_quantile_raises(self, fitted):
        with pytest.raises(KeyError, match="no context"):
            fitted.threshold(0.125)


class TestDriftChannel:
    def test_systematic_bias_trips_the_bound(self, fitted):
        biased = make_run(5).copy()
        biased[:, 0] += 2  # one mimicry-style padded syscall per interval
        assert fitted.drift_exceeded(biased)

    def test_drift_series_matches_manual_cumsum(self, fitted):
        run = make_run(13, intervals=12)
        phases = np.arange(12) % HYPERPERIOD
        residuals = run - fitted.phase_means_[phases]
        expected = np.abs(np.cumsum(residuals, axis=0)).max(axis=1)
        np.testing.assert_allclose(
            fitted.drift_series(run), expected, rtol=0, atol=0
        )

    def test_start_index_keeps_phase_alignment(self, fitted):
        run = make_run(17, intervals=20)
        offset = 3
        windowed = fitted.drift_series(run[offset:], start_index=offset)
        phases = (np.arange(20 - offset) + offset) % HYPERPERIOD
        residuals = run[offset:] - fitted.phase_means_[phases]
        expected = np.abs(np.cumsum(residuals, axis=0)).max(axis=1)
        np.testing.assert_array_equal(windowed, expected)


class TestPersistence:
    def test_arrays_roundtrip_is_bit_exact(self, fitted):
        clone = ContextDetector.from_arrays(fitted.to_arrays())
        assert clone.fingerprint() == fitted.fingerprint()
        probe = make_run(23)
        np.testing.assert_array_equal(
            clone.score_series(probe), fitted.score_series(probe)
        )
        np.testing.assert_array_equal(
            clone.drift_series(probe), fitted.drift_series(probe)
        )
        assert clone.thresholds_ == fitted.thresholds_
        assert clone.drift_bound_ == fitted.drift_bound_

    def test_save_load_roundtrip(self, fitted, tmp_path):
        path = tmp_path / "context.npz"
        fitted.save(path)
        assert ContextDetector.load(path).fingerprint() == (
            fitted.fingerprint()
        )

    def test_fingerprint_sensitive_to_fitted_state(self, fitted):
        clone = ContextDetector.from_arrays(fitted.to_arrays())
        clone.scales_ = clone.scales_ * (1.0 + 1e-15)
        assert clone.fingerprint() != fitted.fingerprint()


class TestValidation:
    def test_unfitted_access_raises(self):
        detector = ContextDetector()
        assert not detector.is_fitted
        with pytest.raises(RuntimeError, match="not been fitted"):
            detector.score_series(np.zeros((2, DIM)))

    def test_non_integer_counts_rejected(self):
        with pytest.raises(ValueError, match="integer counts"):
            ContextDetector(num_contexts=2, hyperperiod=2).fit(
                [np.full((8, DIM), 1.5)], make_run(0)
            )

    def test_missing_phase_coverage_rejected(self):
        short = make_run(0, intervals=HYPERPERIOD - 1)
        with pytest.raises(ValueError, match="every schedule phase"):
            ContextDetector(num_contexts=2, hyperperiod=HYPERPERIOD).fit(
                [short], short
            )

    def test_mismatched_vocabularies_rejected(self):
        with pytest.raises(ValueError, match="one syscall vocabulary"):
            ContextDetector(num_contexts=2, hyperperiod=2).fit(
                [make_run(0)], make_run(1)[:, :-1]
            )

    def test_no_training_runs_rejected(self):
        with pytest.raises(ValueError, match="at least one training run"):
            ContextDetector().fit([], make_run(0))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_contexts": 0},
            {"scale_quantile": 0.0},
            {"scale_quantile": 101.0},
            {"scale_floor": -1.0},
            {"hyperperiod": 0},
            {"drift_multiplier": 0.5},
            {"quantiles": (0.0,)},
            {"quantiles": (100.0,)},
        ],
    )
    def test_bad_constructor_arguments(self, kwargs):
        with pytest.raises(ValueError):
            ContextDetector(**kwargs)

    def test_sort_rows_rejects_non_matrix(self):
        with pytest.raises(ValueError, match=r"\(N, D\) matrix"):
            sort_rows(np.zeros(4))


class TestCanonicalisation:
    def test_sort_rows_is_lexicographic(self):
        rows = np.array([[2, 1], [1, 9], [1, 2], [2, 0]])
        np.testing.assert_array_equal(
            sort_rows(rows), np.array([[1, 2], [1, 9], [2, 0], [2, 1]])
        )

    def test_cluster_contexts_deterministic_per_seed(self):
        rows = make_run(31)
        first = cluster_contexts(rows, 3, seed=5)
        second = cluster_contexts(rows, 3, seed=5)
        np.testing.assert_array_equal(first.centers, second.centers)

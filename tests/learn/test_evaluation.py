"""Tests for the evaluation-statistics utilities."""

import numpy as np
import pytest

from repro.learn.evaluation import (
    bootstrap_threshold_interval,
    kfold_fpr,
    summarize_detections,
)


class TestBootstrapThreshold:
    def test_interval_contains_point(self):
        rng = np.random.default_rng(0)
        densities = rng.normal(size=500)
        interval = bootstrap_threshold_interval(densities, 1.0, seed=1)
        assert interval.low <= interval.point <= interval.high
        assert interval.width > 0

    def test_more_data_tightens_interval(self):
        rng = np.random.default_rng(0)
        small = bootstrap_threshold_interval(rng.normal(size=100), 1.0, seed=1)
        large = bootstrap_threshold_interval(rng.normal(size=5000), 1.0, seed=1)
        assert large.width < small.width

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError, match="at least 10"):
            bootstrap_threshold_interval(np.zeros(5), 1.0)

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_threshold_interval(np.zeros(100), 1.0, confidence=1.5)

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(0)
        densities = rng.normal(size=200)
        a = bootstrap_threshold_interval(densities, 1.0, seed=5)
        b = bootstrap_threshold_interval(densities, 1.0, seed=5)
        assert (a.low, a.high) == (b.low, b.high)


class TestKFoldFpr:
    def test_achieved_fpr_near_nominal(self):
        rng = np.random.default_rng(0)
        densities = rng.normal(size=10_000)
        rates = kfold_fpr(densities, p_percent=1.0, num_folds=5, seed=1)
        assert rates.shape == (5,)
        assert rates.mean() == pytest.approx(0.01, abs=0.005)

    def test_validation(self):
        with pytest.raises(ValueError):
            kfold_fpr(np.zeros(100), 1.0, num_folds=1)
        with pytest.raises(ValueError, match="not enough"):
            kfold_fpr(np.zeros(5), 1.0, num_folds=5)


class TestSummarizeDetections:
    def _perfect_run(self, seed):
        truth = np.zeros(100, dtype=bool)
        truth[50:] = True
        return truth.copy(), truth, 50

    def test_perfect_detector(self):
        summary = summarize_detections(self._perfect_run, seeds=range(5))
        assert summary.num_runs == 5
        assert summary.fpr_mean == 0.0
        assert summary.tpr_mean == 1.0
        assert summary.latency_mean == 0.0
        assert summary.missed_runs == 0

    def test_missed_runs_counted(self):
        def blind_run(seed):
            truth = np.zeros(20, dtype=bool)
            truth[10:] = True
            return np.zeros(20, dtype=bool), truth, 10

        summary = summarize_detections(blind_run, seeds=range(3))
        assert summary.missed_runs == 3
        assert summary.latency_max == -1
        assert np.isnan(summary.latency_mean)

    def test_rows_render(self):
        summary = summarize_detections(self._perfect_run, seeds=[1])
        rows = summary.as_rows()
        assert any("FPR" in str(row[0]) for row in rows)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            summarize_detections(self._perfect_run, seeds=[])

    def test_on_real_detector(self, quick_artifacts):
        """End-to-end: replicate the shellcode scenario across seeds."""
        from repro.pipeline.experiments import run_shellcode_experiment

        def run(seed):
            outcome = run_shellcode_experiment(
                quick_artifacts, scenario_seed=seed
            )
            return (
                outcome.flags(1.0),
                outcome.ground_truth,
                outcome.scenario.attack_interval,
            )

        summary = summarize_detections(run, seeds=[1001, 1002, 1003])
        assert summary.fpr_mean <= 0.05
        assert summary.tpr_mean >= 0.4
        assert summary.missed_runs == 0

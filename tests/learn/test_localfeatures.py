"""Tests for the bag-of-patches local-feature detector."""

import numpy as np
import pytest

from repro.learn.localfeatures import (
    LocalFeatureDetector,
    PatchCodebook,
    PatchExtractor,
)


def structured_data(n=200, dim=128, seed=0):
    """Maps with two recurring local motifs placed at fixed positions."""
    rng = np.random.default_rng(seed)
    motif_a = np.array([0, 5, 50, 200, 50, 5, 0, 0], dtype=float)
    motif_b = np.array([100, 100, 100, 100, 0, 0, 0, 0], dtype=float)
    data = np.zeros((n, dim))
    data[:, 16:24] = motif_a
    data[:, 64:72] = motif_b
    data += rng.poisson(2.0, size=(n, dim))
    return data


class TestPatchExtractor:
    def test_patch_count_and_shape(self):
        extractor = PatchExtractor(patch_cells=8, stride=4, min_energy=0.0)
        patches = extractor.patches(np.arange(32, dtype=float) + 1)
        assert patches.shape == ((32 - 8) // 4 + 1, 8)

    def test_patches_normalised(self):
        extractor = PatchExtractor(patch_cells=8, stride=4)
        patches = extractor.patches(structured_data(n=1)[0])
        norms = np.linalg.norm(patches, axis=1)
        np.testing.assert_allclose(norms, 1.0)

    def test_empty_regions_dropped(self):
        extractor = PatchExtractor(patch_cells=8, stride=8, min_energy=1.0)
        vector = np.zeros(64)
        vector[0:8] = 10.0
        patches = extractor.patches(vector)
        assert len(patches) == 1

    def test_scale_invariance(self):
        """Doubling all counts leaves the patch representation unchanged."""
        extractor = PatchExtractor(patch_cells=8, stride=4)
        vector = structured_data(n=1)[0]
        np.testing.assert_allclose(
            extractor.patches(vector), extractor.patches(vector * 2.0)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            PatchExtractor(patch_cells=1)
        with pytest.raises(ValueError):
            PatchExtractor(stride=0)
        with pytest.raises(ValueError, match="shorter"):
            PatchExtractor(patch_cells=64).patches(np.zeros(10))
        with pytest.raises(ValueError, match="1-D"):
            PatchExtractor().patches(np.zeros((2, 32)))


class TestPatchCodebook:
    def test_fit_and_assign(self):
        extractor = PatchExtractor(patch_cells=8, stride=4)
        patches = np.concatenate(
            [extractor.patches(row) for row in structured_data()]
        )
        codebook = PatchCodebook(num_codewords=8, seed=0).fit(patches)
        labels = codebook.assign(patches[:50])
        assert labels.shape == (50,)
        assert labels.max() < 8

    def test_histogram_normalised(self):
        extractor = PatchExtractor(patch_cells=8, stride=4)
        data = structured_data()
        patches = np.concatenate([extractor.patches(row) for row in data])
        codebook = PatchCodebook(num_codewords=8, seed=0).fit(patches)
        histogram = codebook.histogram(extractor.patches(data[0]))
        assert histogram.sum() == pytest.approx(1.0)
        assert (histogram >= 0).all()

    def test_too_few_patches_rejected(self):
        with pytest.raises(ValueError, match="at least"):
            PatchCodebook(num_codewords=32).fit(np.zeros((4, 8)))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PatchCodebook().assign(np.zeros((1, 8)))

    def test_empty_assignment(self):
        extractor = PatchExtractor(patch_cells=8, stride=4)
        patches = np.concatenate(
            [extractor.patches(row) for row in structured_data()]
        )
        codebook = PatchCodebook(num_codewords=4, seed=0).fit(patches)
        assert codebook.assign(np.empty((0, 8))).size == 0


class TestLocalFeatureDetector:
    @pytest.fixture(scope="class")
    def fitted(self):
        training = structured_data(n=250, seed=1)
        validation = structured_data(n=150, seed=2)
        detector = LocalFeatureDetector(
            patch_cells=8,
            stride=4,
            num_codewords=8,
            em_restarts=2,
            min_patch_energy=60.0,  # keep only structured patches
            seed=0,
        )
        return detector.fit(training, validation), validation

    def test_normal_data_passes(self, fitted):
        detector, validation = fitted
        flags = detector.classify_series(structured_data(n=100, seed=3), 1.0)
        assert flags.mean() <= 0.05

    def test_tolerates_global_volume_shift(self, fitted):
        """The Section 5.5 motivation: legitimate global variation."""
        detector, _ = fitted
        scaled = structured_data(n=50, seed=4) * 1.5
        flags = detector.classify_series(scaled, 1.0)
        assert flags.mean() <= 0.25

    def test_detects_new_local_motif(self, fitted):
        detector, _ = fitted
        anomaly = structured_data(n=20, seed=5)
        # A previously unseen alternating motif, repeated across the map
        # (e.g. a rogue activity touching several code regions).
        motif = np.array([0, 200, 0, 200, 0, 200, 0, 200], dtype=float)
        for start in (32, 80, 104, 112):
            anomaly[:, start : start + 8] = motif
        flags = detector.classify_series(anomaly, 1.0)
        assert flags.mean() >= 0.8

    def test_single_map_scoring(self, fitted):
        detector, validation = fitted
        density = detector.log_density(validation[0])
        assert np.isfinite(density)
        assert isinstance(detector.is_anomalous(validation[0], 1.0), bool)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LocalFeatureDetector().log_density(np.zeros(128))

    def test_works_on_platform_maps(self, quick_artifacts):
        detector = LocalFeatureDetector(em_restarts=2, seed=0)
        detector.fit(quick_artifacts.data.training, quick_artifacts.data.validation)
        flags = detector.classify_series(quick_artifacts.data.validation, 1.0)
        assert flags.mean() <= 0.05

"""Tests for the baseline detectors."""

import numpy as np
import pytest

from repro.learn.baselines import (
    HotCellSetDetector,
    NearestNeighborDetector,
    TrafficVolumeDetector,
)


def normal_data(n=300, dim=40, seed=0):
    """Heat-map-like data: a stable hot set plus Poisson noise."""
    rng = np.random.default_rng(seed)
    base = np.zeros(dim)
    base[5:15] = 200.0
    return base + rng.poisson(10.0, size=(n, dim)), base


class TestTrafficVolume:
    def test_normal_data_mostly_passes(self):
        data, _ = normal_data()
        detector = TrafficVolumeDetector(p_percent=1.0).fit(data)
        assert detector.classify_series(data).mean() < 0.05

    def test_flags_volume_spike(self):
        data, base = normal_data()
        detector = TrafficVolumeDetector().fit(data)
        spike = data[0] * 5
        assert detector.is_anomalous(spike)

    def test_flags_volume_drop(self):
        data, _ = normal_data()
        detector = TrafficVolumeDetector().fit(data)
        assert detector.is_anomalous(data[0] * 0.2)

    def test_blind_to_redistribution(self):
        """The paper's criticism: same total, different shape -> missed."""
        data, base = normal_data()
        detector = TrafficVolumeDetector().fit(data)
        shuffled = np.roll(data[0], 17)  # same volume, different cells
        assert not detector.is_anomalous(shuffled)

    def test_bad_p_rejected(self):
        with pytest.raises(ValueError):
            TrafficVolumeDetector(p_percent=0.0)
        with pytest.raises(ValueError):
            TrafficVolumeDetector(p_percent=60.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            TrafficVolumeDetector().is_anomalous(np.zeros(5))


class TestHotCellSet:
    def test_normal_data_passes(self):
        data, _ = normal_data()
        detector = HotCellSetDetector(top_k=10, tolerance=3).fit(data)
        assert detector.classify_series(data[:50]).mean() < 0.1

    def test_flags_relocated_hot_set(self):
        data, _ = normal_data()
        detector = HotCellSetDetector(top_k=10, tolerance=2).fit(data)
        moved = np.roll(data[0], 20)
        assert detector.is_anomalous(moved)

    def test_signature_count_bounded(self):
        data, _ = normal_data()
        detector = HotCellSetDetector(top_k=10).fit(data)
        assert 1 <= detector.num_signatures <= len(data)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HotCellSetDetector(top_k=0)
        with pytest.raises(ValueError):
            HotCellSetDetector(tolerance=-1)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            HotCellSetDetector().is_anomalous(np.zeros(5))


class TestNearestNeighbor:
    def test_normal_data_mostly_passes(self):
        data, _ = normal_data()
        detector = NearestNeighborDetector(p_percent=99.0).fit(data)
        assert detector.classify_series(data[:50]).mean() < 0.1

    def test_flags_far_point(self):
        data, _ = normal_data()
        detector = NearestNeighborDetector().fit(data)
        assert detector.is_anomalous(data[0] + 1000.0)

    def test_nearest_distance_zero_for_training_point(self):
        data, _ = normal_data()
        detector = NearestNeighborDetector().fit(data)
        assert detector.nearest_distance(data[0]) == pytest.approx(0.0, abs=1e-6)

    def test_needs_two_points(self):
        with pytest.raises(ValueError, match="two"):
            NearestNeighborDetector().fit(np.zeros((1, 5)))

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            NearestNeighborDetector(p_percent=40.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            NearestNeighborDetector().is_anomalous(np.zeros(5))

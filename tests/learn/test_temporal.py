"""Tests for the temporal (Markov) extension."""

import numpy as np
import pytest

from repro.learn.detector import MhmDetector
from repro.learn.temporal import ComponentTransitionModel, TemporalDetector


class TestTransitionModel:
    def test_learns_deterministic_cycle(self):
        sequence = np.tile([0, 1, 2], 100)
        model = ComponentTransitionModel(num_components=3, smoothing=0.01)
        model.fit([sequence])
        matrix = model.transition_matrix_
        assert matrix[0, 1] > 0.95
        assert matrix[1, 2] > 0.95
        assert matrix[2, 0] > 0.95

    def test_rows_are_distributions(self):
        rng = np.random.default_rng(0)
        model = ComponentTransitionModel(num_components=4)
        model.fit([rng.integers(0, 4, size=200)])
        np.testing.assert_allclose(model.transition_matrix_.sum(axis=1), 1.0)
        assert model.initial_.sum() == pytest.approx(1.0)

    def test_unseen_transition_scores_low_but_finite(self):
        model = ComponentTransitionModel(num_components=3, smoothing=0.01)
        model.fit([np.tile([0, 1, 2], 100)])
        good = model.sequence_log_likelihood(np.array([0, 1, 2, 0, 1, 2]))
        bad = model.sequence_log_likelihood(np.array([0, 2, 1, 0, 2, 1]))
        assert np.isfinite(bad)
        assert bad < good - 5

    def test_per_step_probabilities_shape(self):
        model = ComponentTransitionModel(num_components=2)
        model.fit([np.array([0, 1, 0, 1])])
        steps = model.log_transition_probabilities(np.array([0, 1, 0]))
        assert steps.shape == (3,)
        assert model.log_transition_probabilities(np.array([])).size == 0

    def test_stationary_distribution(self):
        model = ComponentTransitionModel(num_components=3, smoothing=0.01)
        model.fit([np.tile([0, 1, 2], 200)])
        pi = model.stationary_distribution()
        np.testing.assert_allclose(pi, [1 / 3] * 3, atol=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            ComponentTransitionModel(num_components=0)
        with pytest.raises(ValueError):
            ComponentTransitionModel(num_components=2, smoothing=0.0)
        model = ComponentTransitionModel(num_components=2)
        with pytest.raises(ValueError, match="at least one"):
            model.fit([])
        with pytest.raises(ValueError, match="out of range"):
            model.fit([np.array([0, 5])])
        with pytest.raises(RuntimeError):
            ComponentTransitionModel(2).log_transition_probabilities(np.array([0]))


class TestTemporalDetector:
    @pytest.fixture(scope="class")
    def temporal(self, quick_artifacts):
        detector = TemporalDetector(quick_artifacts.detector, p_percent=1.0)
        detector.fit(
            quick_artifacts.data.training, quick_artifacts.data.validation
        )
        return detector

    def test_requires_fitted_base(self):
        with pytest.raises(RuntimeError, match="fitted"):
            TemporalDetector(MhmDetector())

    def test_normal_series_mostly_clean(self, temporal, quick_artifacts):
        from repro.sim.platform import Platform

        platform = Platform(quick_artifacts.config.with_seed(31338))
        series = platform.collect_intervals(80)
        flags = temporal.classify_series(series)
        assert flags.mean() <= 0.15

    def test_flags_superset_of_density_flags(self, temporal, quick_artifacts):
        series = quick_artifacts.data.validation
        combined = temporal.classify_series(series)
        density_only = quick_artifacts.detector.classify_series(series, 1.0)
        assert (combined | density_only == combined).all()

    def test_phase_scramble_caught_by_transition_channel(
        self, temporal, quick_artifacts
    ):
        """A replayed series of individually-normal maps in a random
        order is invisible per-interval but lights up the temporal
        channel."""
        rng = np.random.default_rng(0)
        matrix = quick_artifacts.data.validation.matrix()
        scrambled = matrix[rng.permutation(len(matrix))]
        density_flags = quick_artifacts.detector.classify_series(scrambled, 1.0)
        transition_flags = temporal.transition_flags(scrambled)
        ordered_flags = temporal.transition_flags(matrix)
        # Per-interval: a permutation changes nothing in distribution.
        assert abs(density_flags.mean() - 0.01) < 0.05
        # Temporal: scrambling breaks the hyperperiod order.
        assert transition_flags.mean() > 3 * max(ordered_flags.mean(), 0.01)

    def test_unfitted_classify_rejected(self, quick_artifacts):
        detector = TemporalDetector(quick_artifacts.detector)
        with pytest.raises(RuntimeError):
            detector.classify_series(quick_artifacts.data.validation)

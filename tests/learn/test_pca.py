"""Tests for the eigenmemory (PCA) transform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.series import HeatMapSeries
from repro.core.spec import HeatMapSpec
from repro.learn.pca import Eigenmemory


def low_rank_data(n=200, dim=50, rank=3, seed=0, noise=0.0):
    """Synthetic data with a known intrinsic dimensionality."""
    rng = np.random.default_rng(seed)
    basis = rng.normal(size=(rank, dim))
    weights = rng.normal(size=(n, rank)) * np.array([10.0, 5.0, 2.0][:rank])
    data = weights @ basis + 100.0
    if noise:
        data = data + rng.normal(scale=noise, size=data.shape)
    return data


class TestFitting:
    def test_mean_is_empirical_mean(self):
        data = low_rank_data()
        model = Eigenmemory(num_components=3).fit(data)
        np.testing.assert_allclose(model.mean_, data.mean(axis=0))

    def test_components_are_orthonormal(self):
        model = Eigenmemory(num_components=3).fit(low_rank_data())
        gram = model.components_ @ model.components_.T
        np.testing.assert_allclose(gram, np.eye(3), atol=1e-10)

    def test_eigenvalues_descending(self):
        model = Eigenmemory(num_components=3).fit(low_rank_data(noise=0.1))
        assert (np.diff(model.eigenvalues_) <= 1e-9).all()

    def test_rank_detected_by_variance_target(self):
        """Rank-3 data: 3 components must explain ~100 % of variance."""
        model = Eigenmemory(variance_target=0.9999).fit(low_rank_data())
        assert model.num_components_ == 3
        assert model.retained_variance_ >= 0.9999

    def test_explicit_component_count(self):
        model = Eigenmemory(num_components=2).fit(low_rank_data())
        assert model.num_components_ == 2

    def test_component_count_capped_by_data(self):
        data = low_rank_data(n=5, dim=20)
        model = Eigenmemory(num_components=50).fit(data)
        assert model.num_components_ <= 5

    def test_needs_two_samples(self):
        with pytest.raises(ValueError, match="two"):
            Eigenmemory().fit(np.ones((1, 10)))

    def test_zero_variance_rejected(self):
        with pytest.raises(ValueError, match="zero variance"):
            Eigenmemory().fit(np.ones((10, 5)))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Eigenmemory(num_components=0)
        with pytest.raises(ValueError):
            Eigenmemory(variance_target=0.0)
        with pytest.raises(ValueError):
            Eigenmemory(variance_target=1.5)

    def test_fit_from_series(self, small_spec):
        rng = np.random.default_rng(0)
        matrix = rng.integers(0, 100, size=(20, small_spec.num_cells))
        series = HeatMapSeries.from_matrix(small_spec, matrix)
        model = Eigenmemory(num_components=2).fit(series)
        assert model.components_.shape == (2, small_spec.num_cells)

    def test_components_for_variance(self):
        model = Eigenmemory(num_components=1).fit(low_rank_data(noise=0.01))
        # Even though only 1 was kept, the full spectrum is retained
        # for the selection diagnostics.
        assert model.components_for_variance(0.9999) >= 3


class TestTransform:
    def test_paper_eq1_projection(self):
        """M' = u^T (M - Psi), verified against direct computation."""
        data = low_rank_data()
        model = Eigenmemory(num_components=3).fit(data)
        sample = data[7]
        expected = model.components_ @ (sample - model.mean_)
        np.testing.assert_allclose(model.transform(sample[np.newaxis])[0], expected)

    def test_roundtrip_exact_on_full_rank(self):
        data = low_rank_data()  # rank 3, no noise
        model = Eigenmemory(num_components=3).fit(data)
        reconstructed = model.inverse_transform(model.transform(data))
        np.testing.assert_allclose(reconstructed, data, atol=1e-8)

    def test_reconstruction_error_decreases_with_components(self):
        data = low_rank_data(noise=1.0)
        errors = []
        for k in (1, 2, 3):
            model = Eigenmemory(num_components=k).fit(data)
            errors.append(model.reconstruction_error(data).mean())
        assert errors[0] > errors[1] > errors[2]

    def test_transform_one_heatmap(self, small_spec):
        from repro.core.mhm import MemoryHeatMap

        rng = np.random.default_rng(0)
        matrix = rng.integers(0, 100, size=(20, small_spec.num_cells))
        model = Eigenmemory(num_components=2).fit(matrix.astype(float))
        heat_map = MemoryHeatMap(small_spec, matrix[0])
        weights = model.transform_one(heat_map)
        assert weights.shape == (2,)

    def test_dimension_mismatch_rejected(self):
        model = Eigenmemory(num_components=2).fit(low_rank_data(dim=50))
        with pytest.raises(ValueError, match="cells"):
            model.transform(np.ones((1, 49)))
        with pytest.raises(ValueError, match="weights"):
            model.inverse_transform(np.ones(5))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not been fitted"):
            Eigenmemory().transform(np.ones((1, 5)))


class TestPersistence:
    def test_roundtrip(self):
        data = low_rank_data(noise=0.5)
        model = Eigenmemory(num_components=3).fit(data)
        restored = Eigenmemory.from_arrays(model.to_arrays())
        np.testing.assert_allclose(restored.transform(data), model.transform(data))
        assert restored.num_components_ == 3


class TestProperties:
    @given(
        data=arrays(
            dtype=np.float64,
            shape=st.tuples(
                st.integers(min_value=5, max_value=20),
                st.integers(min_value=3, max_value=15),
            ),
            elements=st.floats(min_value=-1e3, max_value=1e3),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_projection_never_increases_energy(self, data):
        """||u^T phi|| <= ||phi|| for orthonormal u (Bessel)."""
        if np.allclose(data.var(axis=0).sum(), 0):
            return
        model = Eigenmemory(num_components=2).fit(data)
        shifted = data - model.mean_
        projected = model.transform(data)
        original_norms = np.linalg.norm(shifted, axis=1)
        projected_norms = np.linalg.norm(projected, axis=1)
        assert (projected_norms <= original_norms + 1e-6).all()

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_full_rank_reconstruction_is_lossless(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(12, 6))
        model = Eigenmemory(num_components=6).fit(data)
        reconstructed = model.inverse_transform(model.transform(data))
        np.testing.assert_allclose(reconstructed, data, atol=1e-7)

"""Tests for the Gaussian mixture model and EM."""

import numpy as np
import pytest

from repro.learn.gmm import GaussianMixtureModel, GmmParameters


def three_component_data(n=600, seed=0):
    rng = np.random.default_rng(seed)
    means = np.array([[0.0, 0.0], [8.0, 0.0], [0.0, 8.0]])
    weights = np.array([0.5, 0.3, 0.2])
    counts = (weights * n).astype(int)
    chunks = [
        m + rng.normal(scale=0.7, size=(c, 2)) for m, c in zip(means, counts)
    ]
    return np.concatenate(chunks), means, weights


class TestParameters:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            GmmParameters(
                weights=np.array([0.5, 0.4]),
                means=np.zeros((2, 2)),
                covariances=np.stack([np.eye(2)] * 2),
            )

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            GmmParameters(
                weights=np.array([1.5, -0.5]),
                means=np.zeros((2, 2)),
                covariances=np.stack([np.eye(2)] * 2),
            )

    def test_component_count_mismatch(self):
        with pytest.raises(ValueError, match="disagree"):
            GmmParameters(
                weights=np.array([1.0]),
                means=np.zeros((2, 2)),
                covariances=np.stack([np.eye(2)] * 2),
            )

    def test_cholesky_factors_computed(self):
        params = GmmParameters(
            weights=np.array([1.0]),
            means=np.zeros((1, 2)),
            covariances=np.stack([2.0 * np.eye(2)]),
        )
        np.testing.assert_allclose(
            params.cholesky_factors[0] @ params.cholesky_factors[0].T,
            2.0 * np.eye(2),
            atol=1e-4,  # the factor includes the small stability ridge
        )


class TestFitting:
    def test_recovers_mixture_structure(self):
        data, true_means, true_weights = three_component_data()
        model = GaussianMixtureModel(num_components=3, num_restarts=3, seed=0).fit(
            data
        )
        params = model.parameters
        # Match each true mean to the closest fitted mean.
        for true_mean, true_weight in zip(true_means, true_weights):
            distances = np.linalg.norm(params.means - true_mean, axis=1)
            j = distances.argmin()
            assert distances[j] < 0.5
            assert params.weights[j] == pytest.approx(true_weight, abs=0.05)

    def test_weights_normalised(self):
        data, _, _ = three_component_data()
        model = GaussianMixtureModel(num_components=4, num_restarts=2, seed=0).fit(
            data
        )
        assert model.parameters.weights.sum() == pytest.approx(1.0)

    def test_more_components_never_hurt_likelihood(self):
        data, _, _ = three_component_data()
        ll = []
        for j in (1, 3):
            model = GaussianMixtureModel(
                num_components=j, num_restarts=3, seed=0
            ).fit(data)
            ll.append(model.log_likelihood(data))
        assert ll[1] > ll[0]

    def test_single_component_is_gaussian_fit(self):
        data, _, _ = three_component_data()
        model = GaussianMixtureModel(num_components=1, num_restarts=1, seed=0).fit(
            data
        )
        np.testing.assert_allclose(
            model.parameters.means[0], data.mean(axis=0), atol=1e-6
        )

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError, match="at least"):
            GaussianMixtureModel(num_components=5).fit(np.zeros((3, 2)))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            GaussianMixtureModel(num_components=0)
        with pytest.raises(ValueError):
            GaussianMixtureModel(num_restarts=0)

    def test_restarts_pick_best_likelihood(self):
        data, _, _ = three_component_data(n=150)
        single = GaussianMixtureModel(
            num_components=3, num_restarts=1, seed=3
        ).fit(data)
        multi = GaussianMixtureModel(
            num_components=3, num_restarts=8, seed=3
        ).fit(data)
        assert multi.training_log_likelihood_ >= single.training_log_likelihood_ - 1e-6

    def test_degenerate_tight_cluster_survives(self):
        """Near-zero-variance clusters (predictable RT workloads!) must
        not crash EM."""
        rng = np.random.default_rng(0)
        data = np.concatenate(
            [np.zeros((50, 3)), np.ones((50, 3)) * 5 + rng.normal(scale=1e-9, size=(50, 3))]
        )
        model = GaussianMixtureModel(num_components=2, num_restarts=2, seed=0).fit(
            data
        )
        assert np.isfinite(model.score_samples(data)).all()


class TestScoring:
    @pytest.fixture(scope="class")
    def fitted(self):
        data, _, _ = three_component_data()
        model = GaussianMixtureModel(num_components=3, num_restarts=3, seed=0).fit(
            data
        )
        return model, data

    def test_scores_finite(self, fitted):
        model, data = fitted
        assert np.isfinite(model.score_samples(data)).all()

    def test_outlier_scores_lower(self, fitted):
        model, data = fitted
        typical = model.score_samples(data).mean()
        outlier = model.score_one(np.array([50.0, 50.0]))
        assert outlier < typical - 10

    def test_eq2_weighted_sum(self, fitted):
        """Pr(M) = sum_j lambda_j f(M | mu_j, Sigma_j) (paper Eq. 2)."""
        from repro.learn.gaussian import mvn_logpdf

        model, data = fitted
        params = model.parameters
        point = data[0]
        manual = sum(
            params.weights[j]
            * np.exp(mvn_logpdf(point, params.means[j], params.covariances[j])[0])
            for j in range(3)
        )
        np.testing.assert_allclose(
            model.score_one(point), np.log(manual), atol=1e-3
        )

    def test_responsibilities_sum_to_one(self, fitted):
        model, data = fitted
        resp = model.responsibilities(data[:20])
        np.testing.assert_allclose(resp.sum(axis=1), 1.0)

    def test_predict_component_separates_blobs(self, fitted):
        model, data = fitted
        labels = model.predict_component(data)
        assert len(np.unique(labels)) == 3

    def test_sample_roundtrip(self, fitted):
        model, data = fitted
        rng = np.random.default_rng(0)
        drawn = model.sample(500, rng)
        assert drawn.shape == (500, 2)
        # Samples score like training data, not like outliers.
        assert model.score_samples(drawn).mean() == pytest.approx(
            model.score_samples(data).mean(), abs=1.0
        )

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not been fitted"):
            GaussianMixtureModel().score_samples(np.zeros((1, 2)))


class TestCollapsedComponents:
    """Regression: a zero-weight (collapsed) component used to emit a
    divide-by-zero RuntimeWarning from ``np.log(0)`` on every scoring
    call — fatal under ``make test-fast``'s warnings-as-errors filter.
    The kernels' ``safe_log_weights`` now scores it as exactly -inf,
    silently."""

    @pytest.fixture()
    def collapsed(self):
        model = GaussianMixtureModel(num_components=3)
        model.parameters = GmmParameters(
            weights=np.array([0.6, 0.4, 0.0]),
            means=np.array([[0.0, 0.0], [5.0, 5.0], [99.0, 99.0]]),
            covariances=np.stack([np.eye(2)] * 3),
        )
        model.converged_ = True
        return model

    def test_scores_finite_without_warnings(self, collapsed):
        import warnings

        data = np.array([[0.1, -0.2], [5.2, 4.9], [2.5, 2.5]])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            densities = collapsed.score_samples(data)
        assert np.isfinite(densities).all()

    def test_dead_component_never_responsible(self, collapsed):
        data = np.array([[99.0, 99.0], [0.0, 0.0]])
        resp = collapsed.responsibilities(data)
        # Even a point sitting exactly on the dead component's mean
        # belongs to the live components only.
        np.testing.assert_array_equal(resp[:, 2], 0.0)
        np.testing.assert_allclose(resp.sum(axis=1), 1.0)

    def test_dead_component_matches_its_removal(self, collapsed):
        """Scoring with the collapsed component present equals scoring
        the two-component mixture with it dropped."""
        data = np.array([[0.5, 0.5], [4.0, 4.5]])
        trimmed = GaussianMixtureModel(num_components=2)
        trimmed.parameters = GmmParameters(
            weights=np.array([0.6, 0.4]),
            means=collapsed.parameters.means[:2],
            covariances=collapsed.parameters.covariances[:2],
        )
        trimmed.converged_ = True
        np.testing.assert_allclose(
            collapsed.score_samples(data), trimmed.score_samples(data), atol=1e-12
        )


class TestPersistence:
    def test_roundtrip(self):
        data, _, _ = three_component_data(n=200)
        model = GaussianMixtureModel(num_components=2, num_restarts=2, seed=0).fit(
            data
        )
        restored = GaussianMixtureModel.from_arrays(model.to_arrays())
        np.testing.assert_allclose(
            restored.score_samples(data), model.score_samples(data), atol=1e-9
        )

"""EnsembleDetector unit tests: budget split, fusion rules, identity.

The combiner's contract is arithmetic, so most of these run on
hand-picked density/score arrays with explicit thresholds; the tests
that need real fitted models reuse the session-scoped quick-scale
reference artifacts (which now carry both modalities).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.learn.ensemble import (
    ENSEMBLE_RULES,
    EnsembleConfig,
    EnsembleDetector,
    allowed_false_positive_rate,
)

pytestmark = [pytest.mark.contexts]


def hand_ensemble(rule: str = "or", **kwargs) -> EnsembleDetector:
    """An ensemble over explicit thresholds; no fitted models needed."""
    config = EnsembleConfig(rule=rule, **kwargs)
    return EnsembleDetector(
        None, None, config, theta_mhm=0.0, theta_context=1.0
    )


class TestBudgetMath:
    @pytest.mark.parametrize("p", [0.5, 1.0, 2.0])
    @pytest.mark.parametrize("share", [0.1, 1.0 / 3.0, 0.5, 0.9])
    def test_split_sums_exactly_to_total(self, p, share):
        config = EnsembleConfig(p_percent=p, mhm_share=share)
        assert config.p_mhm + config.p_context == p

    def test_allowed_rate_formula(self):
        allowed = allowed_false_positive_rate(1.0, 400)
        expected = 0.01 + 2.0 * np.sqrt(0.01 * 0.99 / 400) + 1.0 / 400
        assert allowed == pytest.approx(expected)

    def test_allowed_rate_rejects_empty_window(self):
        with pytest.raises(ValueError, match="samples"):
            allowed_false_positive_rate(1.0, 0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"p_percent": 0.0},
            {"p_percent": 100.0},
            {"mhm_share": 0.0},
            {"mhm_share": 1.0},
            {"rule": "xor"},
            {"mhm_weight": 1.5},
            {"vote_threshold": 0.0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            EnsembleConfig(**kwargs)


class TestFusionRules:
    # theta_mhm=0 (flag density < 0), theta_context=1 (flag score > 1):
    # interval 0 is MHM-only, interval 1 context-only, interval 2 both,
    # interval 3 neither.
    DENSITIES = np.array([-1.0, 1.0, -1.0, 1.0])
    SCORES = np.array([0.1, 5.0, 5.0, 0.1])

    def test_modality_flags(self):
        mhm, context = hand_ensemble().modality_flags(
            self.DENSITIES, self.SCORES
        )
        np.testing.assert_array_equal(mhm, [True, False, True, False])
        np.testing.assert_array_equal(context, [False, True, True, False])

    def test_or_rule(self):
        fused = hand_ensemble("or").classify(self.DENSITIES, self.SCORES)
        np.testing.assert_array_equal(fused, [True, True, True, False])

    def test_and_rule(self):
        fused = hand_ensemble("and").classify(self.DENSITIES, self.SCORES)
        np.testing.assert_array_equal(fused, [False, False, True, False])

    def test_weighted_rule_majority(self):
        fused = hand_ensemble(
            "weighted", mhm_weight=0.7, vote_threshold=0.5
        ).classify(self.DENSITIES, self.SCORES)
        # 0.7 x mhm + 0.3 x context: only MHM votes clear 0.5.
        np.testing.assert_array_equal(fused, [True, False, True, False])

    def test_weighted_rule_equal_weights_acts_like_or(self):
        fused = hand_ensemble(
            "weighted", mhm_weight=0.5, vote_threshold=0.5
        ).classify(self.DENSITIES, self.SCORES)
        np.testing.assert_array_equal(fused, [True, True, True, False])

    def test_misaligned_series_rejected(self):
        with pytest.raises(ValueError, match="align"):
            hand_ensemble().modality_flags(self.DENSITIES, self.SCORES[:2])

    def test_rule_registry_is_exhaustive(self):
        assert ENSEMBLE_RULES == ("or", "and", "weighted")


class TestCalibrate:
    def test_calibrated_or_rate_stays_within_budget(self):
        rng = np.random.default_rng(0)
        densities = rng.normal(size=2000)
        scores = np.abs(rng.normal(size=2000))
        config = EnsembleConfig(p_percent=1.0, mhm_share=0.5)
        ensemble = EnsembleDetector.calibrate(
            None, None, densities, scores, config
        )
        fused = ensemble.classify(densities, scores)
        assert float(fused.mean()) <= allowed_false_positive_rate(
            config.p_percent, densities.size
        )

    def test_each_modality_respects_its_share(self):
        rng = np.random.default_rng(1)
        densities = rng.normal(size=1000)
        scores = np.abs(rng.normal(size=1000))
        config = EnsembleConfig(p_percent=2.0, mhm_share=0.25)
        ensemble = EnsembleDetector.calibrate(
            None, None, densities, scores, config
        )
        mhm, context = ensemble.modality_flags(densities, scores)
        slack = 1.0 / densities.size
        assert float(mhm.mean()) <= config.p_mhm / 100.0 + slack
        assert float(context.mean()) <= config.p_context / 100.0 + slack

    def test_empty_validation_rejected(self):
        with pytest.raises(ValueError, match="empty validation"):
            EnsembleDetector.calibrate(
                None, None, np.zeros(0), np.zeros(0)
            )


class TestWithFittedModels:
    def test_default_thresholds_come_from_the_banks(self, quick_artifacts):
        ensemble = EnsembleDetector(
            quick_artifacts.detector, quick_artifacts.context_detector
        )
        # Default split 1.0 x 0.5 lands both budgets on the calibrated
        # 0.5 quantile of each bank.
        assert ensemble.theta_mhm == quick_artifacts.detector.threshold(0.5)
        assert ensemble.theta_context == (
            quick_artifacts.context_detector.threshold(0.5)
        )

    def test_uncalibrated_split_raises_keyerror(self, quick_artifacts):
        with pytest.raises(KeyError):
            EnsembleDetector(
                quick_artifacts.detector,
                quick_artifacts.context_detector,
                EnsembleConfig(p_percent=1.0, mhm_share=0.3),
            )

    def test_fingerprint_stable_and_rule_sensitive(self, quick_artifacts):
        build = lambda rule: EnsembleDetector(
            quick_artifacts.detector,
            quick_artifacts.context_detector,
            EnsembleConfig(rule=rule),
        )
        assert build("or").fingerprint() == build("or").fingerprint()
        assert build("or").fingerprint() != build("and").fingerprint()

"""Property-based tests of the context modality (hypothesis).

Four contracts, over randomly generated syscall streams rather than
hand-picked fixtures:

* **permutation invariance** — the fitted contexts are a pure function
  of the *multiset* of training vectors: permuting interval rows or
  reordering training runs cannot move a single bit of the result
  (row canonicalisation + exact int64 phase sums);
* **scale consistency** — the score channel is a ratio of distances,
  so consistently scaled parameters and data leave scores unchanged,
  and refitting on power-of-two-scaled data scales the centers exactly
  (power-of-two multiplication is lossless in binary floating point;
  arbitrary factors would perturb the k-means arithmetic);
* **kernel differential** — the vectorized ``nearest_context_batch``
  agrees with the scalar ``math.fsum`` reference oracle to 1e-9 with
  bit-identical labels;
* **FPR budget** — the calibrated OR-rule ensemble's clean-stream flag
  rate stays within the declared combined budget plus binomial slack.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.learn.contexts import ContextDetector, cluster_contexts
from repro.learn.ensemble import (
    EnsembleConfig,
    EnsembleDetector,
    allowed_false_positive_rate,
)

pytestmark = [pytest.mark.contexts]

HYPERPERIOD = 4
DIM = 5


def _runs(seed: int, count: int = 3, intervals: int = 16) -> list:
    """Clean periodic syscall streams (integer counts)."""
    rng = np.random.default_rng(seed)
    pattern = rng.integers(2, 15, size=(HYPERPERIOD, DIM))
    out = []
    for _ in range(count):
        phases = np.arange(intervals) % HYPERPERIOD
        noise = rng.integers(0, 3, size=(intervals, DIM))
        out.append((pattern[phases] + noise).astype(np.int64))
    return out


def _fit(runs, seed: int = 0, **kwargs) -> ContextDetector:
    detector = ContextDetector(
        num_contexts=3, hyperperiod=HYPERPERIOD, seed=seed, **kwargs
    )
    return detector.fit(runs[:-1], runs[-1])


class TestPermutationInvariance:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        perm_seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_cluster_contexts_ignores_row_order(self, seed, perm_seed):
        rows = np.vstack(_runs(seed))
        permuted = rows[np.random.default_rng(perm_seed).permutation(len(rows))]
        original = cluster_contexts(rows, 3, seed=0)
        shuffled = cluster_contexts(permuted, 3, seed=0)
        np.testing.assert_array_equal(original.centers, shuffled.centers)

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        perm_seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_fit_ignores_training_run_order(self, seed, perm_seed):
        runs = _runs(seed, count=4)
        training, validation = runs[:-1], runs[-1]
        order = np.random.default_rng(perm_seed).permutation(len(training))
        reordered = [training[i] for i in order]
        original = ContextDetector(
            num_contexts=3, hyperperiod=HYPERPERIOD, seed=0
        ).fit(training, validation)
        shuffled = ContextDetector(
            num_contexts=3, hyperperiod=HYPERPERIOD, seed=0
        ).fit(reordered, validation)
        # Bit-identical fitted state: k-means sees the canonicalised
        # multiset, phase sums accumulate in exact int64.
        assert original.fingerprint() == shuffled.fingerprint()


class TestScaleConsistency:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        factor=st.floats(min_value=0.25, max_value=8.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_scores_invariant_under_consistent_scaling(self, seed, factor):
        # Scale centers, per-context scales and the probe data by the
        # same factor: distances and scales both scale linearly, so the
        # score (their ratio) is unchanged.  scale_floor=0 — a nonzero
        # floor deliberately breaks this linearity for tiny contexts.
        runs = _runs(seed)
        detector = _fit(runs, scale_floor=0.0)
        arrays = detector.to_arrays()
        arrays["context_centers"] = arrays["context_centers"] * factor
        arrays["context_scales"] = arrays["context_scales"] * factor
        scaled = ContextDetector.from_arrays(arrays)
        probe = runs[0].astype(np.float64)
        np.testing.assert_allclose(
            scaled.score_series(probe * factor),
            detector.score_series(probe),
            rtol=1e-9,
        )

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        power=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_refit_centers_scale_exactly_with_powers_of_two(
        self, seed, power
    ):
        # 2**k scaling is exact in binary floating point: every
        # distance, partial sum and mean in k-means scales losslessly,
        # so the refitted centers are the scaled originals to the bit.
        factor = float(2**power)
        rows = np.vstack(_runs(seed)).astype(np.float64)
        base = cluster_contexts(rows, 3, seed=0)
        scaled = cluster_contexts(rows * factor, 3, seed=0)
        np.testing.assert_array_equal(scaled.centers, base.centers * factor)

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        power=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=15, deadline=None)
    def test_drift_scales_exactly_with_powers_of_two(self, seed, power):
        factor = 2**power
        runs = _runs(seed)
        detector = _fit(runs)
        arrays = detector.to_arrays()
        arrays["context_phase_sums"] = (
            arrays["context_phase_sums"] * factor
        )
        scaled = ContextDetector.from_arrays(arrays)
        probe = runs[0]
        np.testing.assert_array_equal(
            scaled.drift_series(probe * factor),
            detector.drift_series(probe) * factor,
        )


class TestKernelDifferential:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        rows=st.integers(min_value=1, max_value=40),
        contexts=st.integers(min_value=1, max_value=6),
        dim=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_vectorized_matches_scalar_oracle(
        self, seed, rows, contexts, dim
    ):
        rng = np.random.default_rng(seed)
        matrix = rng.normal(scale=10.0, size=(rows, dim))
        centers = rng.normal(scale=10.0, size=(contexts, dim))
        with kernels.use_backend("vectorized"):
            fast_labels, fast_dist = kernels.nearest_context_batch(
                matrix, centers
            )
        with kernels.use_backend("reference"):
            ref_labels, ref_dist = kernels.nearest_context_batch(
                matrix, centers
            )
        np.testing.assert_array_equal(fast_labels, ref_labels)
        np.testing.assert_allclose(fast_dist, ref_dist, atol=1e-9)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_duplicate_centers_break_ties_identically(self, seed):
        # Both backends must pick the *first* minimum, or scoring would
        # depend on the backend through the per-context scales.
        rng = np.random.default_rng(seed)
        center = rng.normal(size=(1, 4))
        centers = np.vstack([center, center, center])
        matrix = rng.normal(size=(8, 4))
        with kernels.use_backend("vectorized"):
            fast_labels, _ = kernels.nearest_context_batch(matrix, centers)
        with kernels.use_backend("reference"):
            ref_labels, _ = kernels.nearest_context_batch(matrix, centers)
        np.testing.assert_array_equal(fast_labels, ref_labels)
        assert np.all(fast_labels == 0)


class TestEnsembleBudget:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        samples=st.integers(min_value=200, max_value=1000),
        p_percent=st.floats(min_value=0.5, max_value=5.0),
        share=st.floats(min_value=0.1, max_value=0.9),
    )
    @settings(max_examples=25, deadline=None)
    def test_or_rule_calibrated_rate_within_combined_budget(
        self, seed, samples, p_percent, share
    ):
        # The union bound the docstring promises: calibrating each
        # modality at its share of the budget keeps the fused OR-rule
        # clean rate within p_percent plus binomial slack.  Fusion only
        # reads the thresholds, so no fitted models are needed.
        rng = np.random.default_rng(seed)
        densities = rng.normal(size=samples)
        scores = np.abs(rng.normal(size=samples))
        config = EnsembleConfig(p_percent=p_percent, mhm_share=share)
        ensemble = EnsembleDetector.calibrate(
            None, None, densities, scores, config
        )
        fused = ensemble.classify(densities, scores)
        assert float(fused.mean()) <= allowed_false_positive_rate(
            p_percent, samples
        )

    @given(
        p_percent=st.floats(min_value=0.1, max_value=10.0),
        share=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=50, deadline=None)
    def test_budget_split_is_complementary_to_the_ulp(self, p_percent, share):
        # p_context is computed as the subtraction p - p_mhm (not an
        # independently rounded p x (1 - share)), so the recombined sum
        # sits within one ulp of the declared total — never a rounding
        # hair *above* the union bound's budget beyond that.
        import math

        config = EnsembleConfig(p_percent=p_percent, mhm_share=share)
        total = config.p_mhm + config.p_context
        assert abs(total - p_percent) <= math.ulp(p_percent)

"""Tests for the end-to-end MhmDetector (quick-scale trained fixture)."""

import numpy as np
import pytest

from repro.learn.detector import MhmDetector
from repro.sim.platform import Platform


class TestFittedDetector:
    def test_selection_rule(self, quick_detector):
        """L' chosen automatically to retain >= 99.99 % variance."""
        assert quick_detector.num_eigenmemories_ >= 1
        assert quick_detector.eigenmemory.retained_variance_ >= 0.9999

    def test_thresholds_ordered(self, quick_detector):
        assert quick_detector.threshold(0.5) <= quick_detector.threshold(1.0)

    def test_log10_is_natural_log_over_ln10(self, quick_detector, quick_artifacts):
        heat_map = quick_artifacts.data.validation[0]
        natural = quick_detector.log_density(heat_map)
        assert quick_detector.log10_density(heat_map) == pytest.approx(
            natural / np.log(10)
        )

    def test_validation_fpr_close_to_p(self, quick_detector, quick_artifacts):
        """By construction, ~p% of the calibration set is below theta_p."""
        flags = quick_detector.classify_series(
            quick_artifacts.data.validation, p_percent=1.0
        )
        assert flags.mean() <= 0.03

    def test_fresh_normal_boot_scores_high(self, quick_detector, quick_artifacts):
        """Cross-boot generalisation: an unseen normal run stays above
        theta_1 almost everywhere."""
        platform = Platform(quick_artifacts.config.with_seed(31337))
        series = platform.collect_intervals(60)
        flags = quick_detector.classify_series(series, p_percent=1.0)
        assert flags.mean() <= 0.10

    def test_garbage_map_is_anomalous(self, quick_detector, quick_artifacts):
        spec = quick_artifacts.config.spec
        rng = np.random.default_rng(0)
        garbage = rng.integers(0, 10_000, size=spec.num_cells).astype(float)
        assert quick_detector.is_anomalous(garbage, p_percent=1.0)

    def test_series_and_single_scoring_agree(self, quick_detector, quick_artifacts):
        series = quick_artifacts.data.validation[:5]
        batch = quick_detector.score_series(series)
        singles = [quick_detector.log_density(m) for m in series]
        np.testing.assert_allclose(batch, singles, rtol=1e-10)

    def test_as_scorer_hook(self, quick_detector, quick_artifacts):
        scorer = quick_detector.as_scorer(p_percent=1.0)
        heat_map = quick_artifacts.data.validation[0]
        log_density, anomalous = scorer(heat_map)
        assert log_density == pytest.approx(quick_detector.log_density(heat_map))
        assert anomalous == quick_detector.is_anomalous(heat_map, 1.0)


class TestPersistence:
    def test_save_load_roundtrip(self, quick_detector, quick_artifacts, tmp_path):
        path = tmp_path / "detector.npz"
        quick_detector.save(path)
        restored = MhmDetector.load(path)
        series = quick_artifacts.data.validation[:10]
        np.testing.assert_allclose(
            restored.score_series(series),
            quick_detector.score_series(series),
            rtol=1e-10,
        )
        assert restored.thresholds.quantiles == quick_detector.thresholds.quantiles
        for q in restored.thresholds.quantiles:
            assert restored.threshold(q) == pytest.approx(quick_detector.threshold(q))


class TestUnfitted:
    def test_unfitted_operations_raise(self):
        detector = MhmDetector()
        assert not detector.is_fitted
        with pytest.raises(RuntimeError, match="not been fitted"):
            detector.log_density(np.zeros(10))
        with pytest.raises(RuntimeError, match="not been fitted"):
            detector.threshold(1.0)
        with pytest.raises(RuntimeError, match="not been fitted"):
            detector.save("/tmp/never.npz")

    def test_explicit_hyperparameters(self):
        detector = MhmDetector(
            num_eigenmemories=4, num_gaussians=3, quantiles=(0.5, 1.0, 2.0)
        )
        assert detector.num_gaussians == 3
        assert detector.quantiles == (0.5, 1.0, 2.0)


class TestSmallScaleTraining:
    def test_fit_on_synthetic_compositions(self, small_spec):
        """The detector works on any spec, not just the paper's."""
        rng = np.random.default_rng(0)
        base_patterns = rng.integers(0, 200, size=(3, small_spec.num_cells))

        def draw(n):
            picks = rng.integers(0, 3, size=n)
            noise = rng.poisson(2.0, size=(n, small_spec.num_cells))
            return base_patterns[picks] + noise

        detector = MhmDetector(num_gaussians=3, em_restarts=2, seed=1)
        detector.fit(draw(300).astype(float), draw(200).astype(float))
        normal_flags = detector.classify_series(draw(200).astype(float), 1.0)
        assert normal_flags.mean() < 0.05
        anomaly = np.full((1, small_spec.num_cells), 500.0)
        assert detector.classify_series(anomaly, 1.0)[0]

"""Tests for k-means clustering."""

import numpy as np
import pytest

from repro.learn.kmeans import kmeans, kmeans_plus_plus_init


def three_blobs(n_per=50, seed=0, spread=0.2):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    points = np.concatenate(
        [c + rng.normal(scale=spread, size=(n_per, 2)) for c in centers]
    )
    return points, centers


class TestInit:
    def test_seeds_are_data_points(self):
        points, _ = three_blobs()
        rng = np.random.default_rng(1)
        centers = kmeans_plus_plus_init(points, 3, rng)
        for center in centers:
            assert any(np.allclose(center, p) for p in points)

    def test_too_many_centers_rejected(self):
        points = np.zeros((3, 2))
        with pytest.raises(ValueError, match="seed"):
            kmeans_plus_plus_init(points, 4, np.random.default_rng(0))

    def test_duplicate_points_handled(self):
        points = np.zeros((10, 2))
        centers = kmeans_plus_plus_init(points, 3, np.random.default_rng(0))
        assert centers.shape == (3, 2)


class TestKMeans:
    def test_recovers_well_separated_blobs(self):
        points, true_centers = three_blobs()
        result = kmeans(points, 3, np.random.default_rng(0))
        assert result.converged
        # Each true center has a recovered center nearby.
        for true_center in true_centers:
            distances = np.linalg.norm(result.centers - true_center, axis=1)
            assert distances.min() < 0.5

    def test_labels_consistent_with_centers(self):
        points, _ = three_blobs()
        result = kmeans(points, 3, np.random.default_rng(0))
        for i, point in enumerate(points):
            distances = np.linalg.norm(result.centers - point, axis=1)
            assert result.labels[i] == distances.argmin()

    def test_inertia_decreases_with_more_clusters(self):
        points, _ = three_blobs()
        inertia_1 = kmeans(points, 1, np.random.default_rng(0)).inertia
        inertia_3 = kmeans(points, 3, np.random.default_rng(0)).inertia
        assert inertia_3 < inertia_1

    def test_k_one_gives_centroid(self):
        points, _ = three_blobs()
        result = kmeans(points, 1, np.random.default_rng(0))
        np.testing.assert_allclose(result.centers[0], points.mean(axis=0))

    def test_deterministic_for_fixed_seed(self):
        points, _ = three_blobs()
        a = kmeans(points, 3, np.random.default_rng(5))
        b = kmeans(points, 3, np.random.default_rng(5))
        np.testing.assert_array_equal(a.centers, b.centers)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError, match="matrix"):
            kmeans(np.zeros(5), 2, np.random.default_rng(0))
        with pytest.raises(ValueError, match="k"):
            kmeans(np.zeros((5, 2)), 0, np.random.default_rng(0))

    def test_exactly_k_centers_even_with_duplicates(self):
        """Empty clusters are reseeded, never dropped."""
        points = np.concatenate([np.zeros((30, 2)), np.ones((2, 2)) * 100])
        result = kmeans(points, 3, np.random.default_rng(0))
        assert result.centers.shape == (3, 2)
        assert len(np.unique(result.labels)) <= 3

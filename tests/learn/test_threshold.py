"""Tests for threshold calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learn.threshold import ThresholdBank, quantile_threshold


class TestQuantileThreshold:
    def test_basic_quantile(self):
        densities = np.arange(1000, dtype=float)
        theta = quantile_threshold(densities, 1.0)
        assert theta == pytest.approx(np.quantile(densities, 0.01))

    def test_expected_fpr_matches_p(self):
        """Classifying the calibration set itself flags ~p percent."""
        rng = np.random.default_rng(0)
        densities = rng.normal(size=10_000)
        for p in (0.5, 1.0, 5.0):
            theta = quantile_threshold(densities, p)
            fpr = (densities < theta).mean()
            assert fpr == pytest.approx(p / 100.0, abs=0.002)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            quantile_threshold(np.array([]), 1.0)

    def test_bad_p_rejected(self):
        densities = np.arange(10, dtype=float)
        with pytest.raises(ValueError):
            quantile_threshold(densities, 0.0)
        with pytest.raises(ValueError):
            quantile_threshold(densities, 100.0)

    @given(
        p=st.floats(min_value=0.1, max_value=10.0),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_threshold_within_data_range(self, p, seed):
        rng = np.random.default_rng(seed)
        densities = rng.normal(size=500)
        theta = quantile_threshold(densities, p)
        assert densities.min() <= theta <= densities.max()


class TestThresholdBank:
    def test_calibrate_default_quantiles(self):
        densities = np.arange(1000, dtype=float)
        bank = ThresholdBank.calibrate(densities)
        assert bank.quantiles == [0.5, 1.0]
        # theta_0.5 <= theta_1: a stricter quantile flags less.
        assert bank.threshold(0.5) <= bank.threshold(1.0)

    def test_is_anomalous(self):
        bank = ThresholdBank(thresholds={1.0: -10.0})
        assert bank.is_anomalous(-11.0, 1.0)
        assert not bank.is_anomalous(-9.0, 1.0)
        assert not bank.is_anomalous(-10.0, 1.0)  # strict inequality

    def test_flag_series(self):
        bank = ThresholdBank(thresholds={1.0: 0.0})
        flags = bank.flag_series(np.array([-1.0, 1.0, -0.5]), 1.0)
        np.testing.assert_array_equal(flags, [True, False, True])

    def test_unknown_quantile_raises(self):
        bank = ThresholdBank(thresholds={1.0: 0.0})
        with pytest.raises(KeyError, match="available"):
            bank.threshold(2.0)

    def test_to_mapping_copy(self):
        bank = ThresholdBank(thresholds={1.0: 0.0})
        mapping = bank.to_mapping()
        mapping[1.0] = 99.0
        assert bank.threshold(1.0) == 0.0

"""Tests for Figueiredo-Jain automatic component selection."""

import numpy as np
import pytest

from repro.learn.fj import FigueiredoJainGmm


def blobs(component_means, n_per=120, seed=0, spread=0.5):
    rng = np.random.default_rng(seed)
    return np.concatenate(
        [
            np.asarray(m) + rng.normal(scale=spread, size=(n_per, len(m)))
            for m in component_means
        ]
    )


class TestSelection:
    def test_recovers_three_components(self):
        data = blobs([[0, 0], [10, 0], [0, 10]], n_per=300, spread=0.3)
        model = FigueiredoJainGmm(max_components=10, seed=0).fit(data)
        assert model.num_components_ == 3

    def test_never_overshoots_badly(self):
        """On looser blobs MML may keep one extra component, never many."""
        data = blobs([[0, 0], [10, 0], [0, 10]], n_per=120, spread=0.5)
        model = FigueiredoJainGmm(max_components=10, seed=0).fit(data)
        assert 3 <= model.num_components_ <= 4

    def test_recovers_two_components(self):
        data = blobs([[0, 0], [12, 12]])
        model = FigueiredoJainGmm(max_components=8, seed=0).fit(data)
        assert model.num_components_ == 2

    def test_single_blob_collapses_to_one(self):
        data = blobs([[0, 0]], n_per=300)
        model = FigueiredoJainGmm(max_components=6, seed=0).fit(data)
        assert model.num_components_ <= 2

    def test_history_is_populated(self):
        data = blobs([[0, 0], [10, 0]])
        model = FigueiredoJainGmm(max_components=6, seed=0).fit(data)
        assert model.history_
        assert all(length > -np.inf for _, length in model.history_)
        assert model.message_length_ == min(length for _, length in model.history_)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            FigueiredoJainGmm(max_components=2, min_components=3)
        with pytest.raises(ValueError):
            FigueiredoJainGmm(min_components=0)

    def test_bad_data_shape(self):
        with pytest.raises(ValueError, match="matrix"):
            FigueiredoJainGmm().fit(np.zeros(10))


class TestScoring:
    def test_scores_finite_and_separating(self):
        data = blobs([[0, 0], [10, 0], [0, 10]])
        model = FigueiredoJainGmm(max_components=10, seed=0).fit(data)
        scores = model.score_samples(data)
        assert np.isfinite(scores).all()
        outlier = model.score_samples(np.array([[100.0, 100.0]]))
        assert outlier[0] < scores.mean() - 10

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            FigueiredoJainGmm().score_samples(np.zeros((1, 2)))

    def test_model_usable_as_gmm(self):
        data = blobs([[0, 0], [10, 0]])
        model = FigueiredoJainGmm(max_components=6, seed=0).fit(data)
        assert model.model_.parameters.weights.sum() == pytest.approx(1.0)
        labels = model.model_.predict_component(data)
        assert len(np.unique(labels)) == model.num_components_

"""Property-based tests of the learning stack (hypothesis).

These pin the mathematical contracts the detector relies on, over
randomly generated MHM-like batches rather than hand-picked fixtures:

* GMM EM — densities stay finite and the winning restart's mean
  log-likelihood is non-decreasing per iteration (equivalently, NLL is
  non-increasing: EM's monotonicity guarantee);
* eigenmemory PCA — projection round-trips within the bound set by the
  discarded eigenvalue mass;
* threshold calibration — θ_p is monotone in p and empirically
  calibrated (flags at most p% of its own calibration set).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learn.gmm import GaussianMixtureModel
from repro.learn.pca import Eigenmemory
from repro.learn.threshold import ThresholdBank, quantile_threshold


def _blob_batch(seed: int, samples: int, features: int, clusters: int) -> np.ndarray:
    """A clustered batch shaped like projected MHM feature vectors."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=5.0, size=(clusters, features))
    labels = rng.integers(clusters, size=samples)
    return centers[labels] + rng.normal(scale=0.7, size=(samples, features))


class TestGmmProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        samples=st.integers(min_value=30, max_value=80),
        features=st.integers(min_value=2, max_value=5),
        components=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_density_finite_and_nll_non_increasing(
        self, seed, samples, features, components
    ):
        data = _blob_batch(seed, samples, features, clusters=components)
        gmm = GaussianMixtureModel(
            num_components=components, num_restarts=1, max_iterations=50, seed=seed
        )
        gmm.fit(data)

        densities = gmm.score_samples(data)
        assert np.all(np.isfinite(densities))

        trajectory = np.asarray(gmm.log_likelihood_trajectory_)
        assert trajectory.size >= 1 and np.all(np.isfinite(trajectory))
        # EM guarantee: mean LL never decreases ⇔ NLL never increases.
        # The covariance ridge (default 1e-4) perturbs the exact M-step
        # maximizer, so monotonicity holds up to a ridge-scale slack —
        # still ~100x tighter than any genuine EM regression.
        nll = -trajectory
        slack = 1e-4 * np.maximum(1.0, np.abs(trajectory[:-1]))
        assert np.all(np.diff(nll) <= slack)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_weights_form_a_distribution(self, seed):
        data = _blob_batch(seed, samples=60, features=3, clusters=2)
        gmm = GaussianMixtureModel(
            num_components=2, num_restarts=1, max_iterations=50, seed=seed
        )
        gmm.fit(data)
        weights = gmm.parameters.weights
        assert np.all(weights >= 0)
        assert np.isclose(weights.sum(), 1.0)


class TestPcaProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        samples=st.integers(min_value=12, max_value=40),
        features=st.integers(min_value=3, max_value=10),
    )
    @settings(max_examples=25, deadline=None)
    def test_full_rank_round_trip_is_lossless(self, seed, samples, features):
        data = np.random.default_rng(seed).normal(size=(samples, features))
        pca = Eigenmemory(num_components=min(samples, features))
        pca.fit(data)
        reconstructed = pca.inverse_transform(pca.transform(data))
        assert np.allclose(reconstructed, data, atol=1e-8)

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        keep=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_truncated_round_trip_error_bounded_by_dropped_mass(self, seed, keep):
        data = _blob_batch(seed, samples=50, features=6, clusters=3)
        full = Eigenmemory(num_components=6)
        full.fit(data)
        pca = Eigenmemory(num_components=keep)
        pca.fit(data)

        reconstructed = pca.inverse_transform(pca.transform(data))
        mean_sq_error = float(np.mean(np.sum((data - reconstructed) ** 2, axis=1)))
        # Mean squared reconstruction error equals the dropped
        # eigenvalue mass exactly (PCA optimality); allow roundoff.
        dropped_mass = float(np.sum(full.eigenvalues_[keep:]))
        assert mean_sq_error <= dropped_mass * (1 + 1e-6) + 1e-8

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_more_components_never_increase_error(self, seed):
        data = _blob_batch(seed, samples=40, features=5, clusters=2)
        errors = []
        for keep in (1, 2, 3, 4, 5):
            pca = Eigenmemory(num_components=keep)
            pca.fit(data)
            errors.append(float(np.mean(pca.reconstruction_error(data))))
        assert all(a >= b - 1e-9 for a, b in zip(errors, errors[1:]))


class TestThresholdProperties:
    log_density_batches = st.lists(
        st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
        min_size=2,
        max_size=300,
    )

    @given(
        densities=log_density_batches,
        p_low=st.floats(min_value=0.1, max_value=40.0),
        p_delta=st.floats(min_value=0.0, max_value=50.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_threshold_monotone_in_p_and_within_range(
        self, densities, p_low, p_delta
    ):
        batch = np.asarray(densities)
        theta_low = quantile_threshold(batch, p_low)
        theta_high = quantile_threshold(batch, p_low + p_delta)
        assert theta_low <= theta_high
        assert batch.min() <= theta_low and theta_high <= batch.max()

    @given(
        densities=log_density_batches,
        p_percent=st.floats(min_value=0.1, max_value=99.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_calibrated_flag_rate_at_most_p(self, densities, p_percent):
        """θ_p's contract: on its own calibration set, *strictly below*
        θ_p means anomalous.  With linear-interpolated quantiles the
        flagged count is bounded by the order statistic just above the
        quantile position: floor(q·(n−1)) + 1."""
        batch = np.asarray(densities)
        bank = ThresholdBank.calibrate(batch, quantiles=(p_percent,))
        flagged = bank.flag_series(batch, p_percent)
        q = p_percent / 100.0
        bound = np.floor(q * (batch.size - 1) + 1e-9) + 1
        assert flagged.sum() <= bound

    @given(densities=log_density_batches, shift=st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=50, deadline=None)
    def test_threshold_equivariant_under_shift(self, densities, shift):
        batch = np.asarray(densities)
        assert np.isclose(
            quantile_threshold(batch + shift, 1.0),
            quantile_threshold(batch, 1.0) + shift,
            atol=1e-6 * max(1.0, np.abs(batch).max()),
        )

"""`repro top` rendering: synthetic snapshots, no serve run needed."""

import io

from repro.viz.top import STREAM_ROWS, render_top, run_top


def _snapshot(shard=0, step=4, final=False, scored=12, events=()):
    metrics = {
        f'serve.shard.intervals_scored{{shard="{shard}"}}': {
            "type": "counter", "value": scored,
        },
        f'serve.shard.queue_depth{{shard="{shard}"}}': {
            "type": "gauge", "value": 3,
        },
        "serve.queue.dropped": {"type": "counter", "value": 1},
        "serve.alarms": {"type": "counter", "value": 2},
        f'serve.shard.batch_latency_us{{shard="{shard}"}}': {
            "type": "histogram",
            "count": scored,
            "quantiles": {"p50": 950.0, "p95": 2_400.0, "p99": 9_100.0},
        },
    }
    return {
        "shard": shard,
        "seq": step,
        "step": step,
        "sim_time_ns": step * 10_000_000,
        "final": final,
        "metrics": metrics,
        "recent_events": list(events),
    }


class TestRenderTop:
    def test_empty_directory_placeholder(self):
        out = render_top({}, source="snaps/")
        assert "no snapshots yet" in out
        assert "snaps/" in out

    def test_shard_table_and_header_totals(self):
        out = render_top({0: _snapshot(0), 1: _snapshot(1)}, source="d")
        assert "[shards: 2  scored: 24  alarms: 4  live]" in out
        assert "shards" in out
        assert "p95" in out

    def test_latency_quantiles_formatted(self):
        out = render_top({0: _snapshot()})
        assert "950µs" in out
        assert "2.4ms" in out
        assert "9.1ms" in out

    def test_final_badge_when_all_shards_final(self):
        out = render_top({0: _snapshot(0, final=True), 1: _snapshot(1, final=True)})
        assert "final]" in out
        assert "live]" not in out

    def test_event_stream_merged_by_sim_time_and_capped(self):
        events = [
            {
                "event": "serve.alarm",
                "sim_time_ns": i * 1_000_000,
                "seq": i,
                "device_id": f"dev-{i:04d}",
                "fields": {"interval": i, "streak": 3},
            }
            for i in range(STREAM_ROWS + 5)
        ]
        out = render_top({0: _snapshot(events=events[::2]),
                          1: _snapshot(shard=1, events=events[1::2])})
        assert "recent events" in out
        # Capped to the last STREAM_ROWS across both shards, newest last.
        assert f"dev-{STREAM_ROWS + 4:04d}" in out
        assert "dev-0000" not in out
        assert "interval=14 streak=3" in out

    def test_no_event_section_when_feed_empty(self):
        assert "recent events" not in render_top({0: _snapshot()})


class TestRunTop:
    def test_once_renders_single_frame(self, tmp_path):
        stream = io.StringIO()
        frames = run_top(tmp_path, once=True, stream=stream)
        assert frames == 1
        assert "no snapshots yet" in stream.getvalue()

    def test_stops_when_all_shards_final(self, tmp_path):
        import json

        (tmp_path / "shard0-000001.metrics.json").write_text(
            json.dumps(_snapshot(final=True))
        )
        stream = io.StringIO()
        frames = run_top(tmp_path, interval=0.0, stream=stream, width=400)
        assert frames == 1
        assert "final]" in stream.getvalue()

    def test_max_frames_bounds_live_loop(self, tmp_path):
        stream = io.StringIO()
        frames = run_top(tmp_path, interval=0.0, stream=stream, max_frames=3)
        assert frames == 3
        # Refresh-in-place: later frames are preceded by a clear escape.
        assert stream.getvalue().count("\x1b[2J") == 2

"""Tests for the terminal renderers."""

import numpy as np
import pytest

from repro.core.mhm import MemoryHeatMap
from repro.viz.ascii import render_heatmap, render_series, render_sparkline


class TestHeatmap:
    def test_shape_and_header(self, small_spec):
        heat_map = MemoryHeatMap(small_spec)
        heat_map.record(small_spec.base_address, count=100)
        art = render_heatmap(heat_map, width=4)
        lines = art.splitlines()
        assert f"{small_spec.base_address:#x}" in lines[0]
        grid = lines[1:]
        assert len(grid) == -(-small_spec.num_cells // 4)
        assert all(len(row) <= 4 for row in grid)

    def test_hot_cell_is_darkest(self, small_spec):
        heat_map = MemoryHeatMap(small_spec)
        heat_map.record(small_spec.base_address, count=1000)
        art = render_heatmap(heat_map, width=small_spec.num_cells)
        grid_row = art.splitlines()[1]
        assert grid_row[0] == "@"
        assert grid_row[1] == " "

    def test_empty_map_renders_blank(self, small_spec):
        art = render_heatmap(MemoryHeatMap(small_spec), width=8)
        for row in art.splitlines()[1:]:
            assert set(row) <= {" "}

    def test_log_scale(self, small_spec):
        heat_map = MemoryHeatMap(small_spec)
        heat_map.record(small_spec.base_address, count=10)
        heat_map.record(small_spec.base_address + small_spec.granularity, count=1000)
        linear = render_heatmap(heat_map, width=8)
        log = render_heatmap(heat_map, width=8, log_scale=True)
        assert linear != log

    def test_bad_width(self, small_spec):
        with pytest.raises(ValueError):
            render_heatmap(MemoryHeatMap(small_spec), width=0)


class TestSparkline:
    def test_length_capped(self):
        line = render_sparkline(np.arange(500), width=50)
        assert len(line) == 50

    def test_short_series_uncompressed(self):
        assert len(render_sparkline([1, 2, 3])) == 3

    def test_constant_series(self):
        line = render_sparkline([5, 5, 5])
        assert len(set(line)) == 1

    def test_empty(self):
        assert render_sparkline([]) == ""

    def test_monotone_input_monotone_output(self):
        line = render_sparkline(np.linspace(0, 1, 8))
        assert list(line) == sorted(line)


class TestSeries:
    def test_contains_data_marks(self):
        art = render_series(np.sin(np.linspace(0, 6, 100)), height=8, width=40)
        assert "*" in art
        assert "y:" in art.splitlines()[-1]

    def test_thresholds_drawn(self):
        art = render_series(
            np.linspace(0, 1, 50), thresholds={"theta": 0.5}, height=10, width=40
        )
        assert "-" in art
        assert "theta"[0] in art

    def test_events_drawn(self):
        art = render_series(
            np.zeros(50) + np.arange(50) % 2, events={"inject": 25}, width=40
        )
        assert "|" in art

    def test_empty_series(self):
        assert render_series([]) == ""

    def test_bad_height(self):
        with pytest.raises(ValueError):
            render_series([1, 2], height=2)

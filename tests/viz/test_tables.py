"""Tests for the table formatter."""

import pytest

from repro.viz.tables import format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1], ["long-name", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows padded to the same width

    def test_float_formatting(self):
        text = format_table(["x"], [[3.14159265]])
        assert "3.142" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="width"):
            format_table(["a", "b"], [["only-one"]])

    def test_no_title(self):
        text = format_table(["a"], [["x"]])
        assert text.splitlines()[0].startswith("a")

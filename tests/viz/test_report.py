"""Tests for the report aggregator."""

import pathlib

from repro.viz.report import REPORT_ORDER, build_report, write_report


class TestBuildReport:
    def test_orders_known_reports(self, tmp_path):
        (tmp_path / "test_fig7_app_launch.txt").write_text("fig7 body")
        (tmp_path / "test_fig1_example_mhm.txt").write_text("fig1 body")
        report = build_report(tmp_path)
        assert report.index("test_fig1_example_mhm") < report.index(
            "test_fig7_app_launch"
        )
        assert "fig1 body" in report
        assert "fig7 body" in report

    def test_missing_reports_noted(self, tmp_path):
        report = build_report(tmp_path)
        assert report.count("not generated") == len(REPORT_ORDER)

    def test_extra_reports_appended(self, tmp_path):
        (tmp_path / "test_custom_thing.txt").write_text("custom")
        report = build_report(tmp_path)
        assert "test_custom_thing" in report
        assert "custom" in report

    def test_missing_directory_tolerated(self, tmp_path):
        report = build_report(tmp_path / "nope")
        assert "reproduction report" in report

    def test_write_report(self, tmp_path):
        (tmp_path / "test_fig1_example_mhm.txt").write_text("x")
        destination = write_report(tmp_path, tmp_path / "REPORT.md")
        assert isinstance(destination, pathlib.Path)
        assert destination.read_text().startswith("# Memory Heat Map")

    def test_every_benchmark_in_canonical_order(self):
        """Keep REPORT_ORDER in sync with the benchmark files."""
        bench_dir = pathlib.Path(__file__).parents[2] / "benchmarks"
        bench_names = {
            p.stem for p in bench_dir.glob("test_*.py")
        }
        assert set(REPORT_ORDER) == bench_names

"""The coverage gate's package-floor logic, exercised on synthetic
reports (pytest-cov itself is optional, the gate's arithmetic is not)."""

import json
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_coverage  # noqa: E402


def _entry(covered: int, statements: int) -> dict:
    return {"summary": {"covered_lines": covered, "num_statements": statements}}


def _report(tmp_path, files: dict) -> str:
    path = tmp_path / "coverage.json"
    path.write_text(json.dumps({"files": files}))
    return str(path)


GOOD = {
    "src/repro/serve/service.py": _entry(90, 100),
    "src/repro/serve/bus.py": _entry(90, 100),
    "src/repro/serve/recalibrate.py": _entry(90, 100),
    "src/repro/attacks/mimicry.py": _entry(95, 100),
    "src/repro/conformance/matrix.py": _entry(88, 100),
    "src/repro/learn/contexts.py": _entry(92, 100),
    "src/repro/learn/ensemble.py": _entry(92, 100),
    "src/repro/cli.py": _entry(80, 100),
}


class TestGates:
    def test_every_subsystem_is_gated(self):
        assert set(check_coverage.GATES) == {
            "src/repro/serve/",
            "src/repro/serve/bus.py",
            "src/repro/serve/recalibrate.py",
            "src/repro/attacks/",
            "src/repro/conformance/",
            "src/repro/learn/contexts.py",
            "src/repro/learn/ensemble.py",
        }
        assert all(floor >= 85.0 for floor in check_coverage.GATES.values())

    def test_all_floors_met_passes(self, tmp_path, capsys):
        assert check_coverage.main([_report(tmp_path, GOOD)]) == 0
        assert "coverage gate passed" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "path", ["src/repro/attacks/mimicry.py", "src/repro/conformance/matrix.py"]
    )
    def test_gated_package_below_floor_fails(self, tmp_path, capsys, path):
        files = dict(GOOD)
        files[path] = _entry(60, 100)
        assert check_coverage.main([_report(tmp_path, files)]) == 1
        assert "coverage gate FAILED" in capsys.readouterr().out

    @pytest.mark.parametrize("prefix", list(check_coverage.GATES))
    def test_missing_gated_package_fails(self, tmp_path, capsys, prefix):
        files = {k: v for k, v in GOOD.items() if prefix not in k}
        assert check_coverage.main([_report(tmp_path, files)]) == 1
        assert f"no {prefix} files" in capsys.readouterr().out

    def test_module_gate_not_masked_by_serve_aggregate(
        self, tmp_path, capsys
    ):
        """An undertested bus.py must fail its own gate even when the
        serve/ aggregate stays above the package floor."""
        files = dict(GOOD)
        files["src/repro/serve/service.py"] = _entry(100, 100)
        files["src/repro/serve/bus.py"] = _entry(60, 100)
        files["src/repro/serve/recalibrate.py"] = _entry(100, 100)
        assert check_coverage.main([_report(tmp_path, files)]) == 1
        out = capsys.readouterr().out
        assert "src/repro/serve/bus.py below 85.0%" in out

    def test_rest_below_baseline_fails(self, tmp_path, capsys):
        files = dict(GOOD)
        files["src/repro/cli.py"] = _entry(10, 100)
        assert check_coverage.main([_report(tmp_path, files)]) == 1
        assert "below baseline" in capsys.readouterr().out

    def test_gated_packages_excluded_from_rest(self, tmp_path, capsys):
        """A stellar attacks/ score must not mask a rest regression."""
        files = {
            "src/repro/attacks/mimicry.py": _entry(100, 1000),
            "src/repro/serve/service.py": _entry(90, 100),
            "src/repro/conformance/matrix.py": _entry(88, 100),
            "src/repro/learn/contexts.py": _entry(92, 100),
            "src/repro/learn/ensemble.py": _entry(92, 100),
            "src/repro/cli.py": _entry(10, 100),
        }
        assert check_coverage.main([_report(tmp_path, files)]) == 1
        assert "below baseline" in capsys.readouterr().out

    def test_unreadable_report_fails(self, tmp_path, capsys):
        assert check_coverage.main([str(tmp_path / "ghost.json")]) == 1
        assert "unreadable report" in capsys.readouterr().out

"""Fresh-interpreter seed stability for the two-modality stack.

The repo's determinism claims are usually checked within one process;
this test closes the remaining gap by running the full pipeline —
training both modalities, fusing them, building the tiny conformance
matrix — in **two separate interpreters with different
``PYTHONHASHSEED``** values and asserting the fingerprints and the
canonical matrix digest are byte-identical.  Anything that leaked set-
or dict-iteration order, ``id()``-keyed state or hash-dependent tie
breaking into the numerics would diverge here.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = [pytest.mark.conformance, pytest.mark.contexts, pytest.mark.slow]

REPO_ROOT = Path(__file__).resolve().parents[2]

SNIPPET = """
import json

from repro.conformance.matrix import build_matrix
from repro.learn.ensemble import EnsembleDetector
from repro.pipeline.experiments import QUICK_SCALE, get_reference_artifacts

artifacts = get_reference_artifacts(QUICK_SCALE)
ensemble = EnsembleDetector(artifacts.detector, artifacts.context_detector)
matrix = build_matrix()  # tiny sizing
print(json.dumps({
    "context_fingerprint": artifacts.context_detector.fingerprint(),
    "ensemble_fingerprint": ensemble.fingerprint(),
    "matrix_digest": matrix.digest(),
    "matrix_conformant": matrix.conformant,
}))
"""


SERVE_SNIPPET = """
import json
import sys

from repro.serve import FleetService, FleetTrainSpec, ServeConfig

config = ServeConfig(
    devices=4,
    shards=2,
    intervals=8,
    seed=11,
    attacked_devices=2,
    train=FleetTrainSpec(
        runs=1, intervals_per_run=40, validation_intervals=40, em_restarts=1
    ),
    cache_dir=sys.argv[1],
)
report = FleetService(config).run()
print(json.dumps({
    "fleet_digest": report.fleet_digest,
    "kernels_dtype": report.kernels_dtype,
    "verdicts": report.verdict_sequences,
}))
"""


def _run_fresh_interpreter(
    hash_seed: str,
    snippet: str = SNIPPET,
    argv: tuple = (),
    dtype: str | None = None,
) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    if dtype is None:
        env.pop("REPRO_KERNELS_DTYPE", None)
    else:
        env["REPRO_KERNELS_DTYPE"] = dtype
    result = subprocess.run(
        [sys.executable, "-c", snippet, *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        timeout=300,
        check=True,
    )
    return json.loads(result.stdout.strip().splitlines()[-1])


def test_fingerprints_and_matrix_digest_survive_interpreter_restart():
    first = _run_fresh_interpreter("0")
    second = _run_fresh_interpreter("20260808")
    assert first["matrix_conformant"] is True
    assert first == second


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_fleet_digests_survive_interpreter_restart(tmp_path, dtype):
    """A tiny sharded fleet, scored through the fused path under each
    compute dtype, produces byte-identical digests across interpreters
    with different hash seeds (the env var is the only way the dtype
    reaches pool workers, so this also pins that plumbing)."""
    cache = str(tmp_path / "cache")
    first = _run_fresh_interpreter(
        "0", snippet=SERVE_SNIPPET, argv=(cache,), dtype=dtype
    )
    second = _run_fresh_interpreter(
        "20260808", snippet=SERVE_SNIPPET, argv=(cache,), dtype=dtype
    )
    assert first["kernels_dtype"] == dtype
    assert first == second

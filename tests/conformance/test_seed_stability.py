"""Fresh-interpreter seed stability for the two-modality stack.

The repo's determinism claims are usually checked within one process;
this test closes the remaining gap by running the full pipeline —
training both modalities, fusing them, building the tiny conformance
matrix — in **two separate interpreters with different
``PYTHONHASHSEED``** values and asserting the fingerprints and the
canonical matrix digest are byte-identical.  Anything that leaked set-
or dict-iteration order, ``id()``-keyed state or hash-dependent tie
breaking into the numerics would diverge here.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = [pytest.mark.conformance, pytest.mark.contexts, pytest.mark.slow]

REPO_ROOT = Path(__file__).resolve().parents[2]

SNIPPET = """
import json

from repro.conformance.matrix import build_matrix
from repro.learn.ensemble import EnsembleDetector
from repro.pipeline.experiments import QUICK_SCALE, get_reference_artifacts

artifacts = get_reference_artifacts(QUICK_SCALE)
ensemble = EnsembleDetector(artifacts.detector, artifacts.context_detector)
matrix = build_matrix()  # tiny sizing
print(json.dumps({
    "context_fingerprint": artifacts.context_detector.fingerprint(),
    "ensemble_fingerprint": ensemble.fingerprint(),
    "matrix_digest": matrix.digest(),
    "matrix_conformant": matrix.conformant,
}))
"""


def _run_fresh_interpreter(hash_seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-c", SNIPPET],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        timeout=300,
        check=True,
    )
    return json.loads(result.stdout.strip().splitlines()[-1])


def test_fingerprints_and_matrix_digest_survive_interpreter_restart():
    first = _run_fresh_interpreter("0")
    second = _run_fresh_interpreter("20260808")
    assert first["matrix_conformant"] is True
    assert first == second

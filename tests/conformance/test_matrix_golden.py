"""Golden regression for the conformance matrix.

The tiny-sizing matrix — every cell's outcome *and* metrics — is
frozen as a committed JSON fixture.  Any change to an attack, a
detector column, a threshold, or the underlying simulation that moves
a single number fails here with a field-level diff.  Intentional
changes regenerate the fixture and review it like code::

    python -m pytest tests/conformance/test_matrix_golden.py --update-goldens

A second, ``slow``-marked test replays the build in two *fresh*
interpreters and compares digests, so the determinism claim covers
process boundaries (hash seeds, import order, BLAS state), not just
in-process memoisation.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

import pytest

from repro.conformance.matrix import TINY_SIZING, build_matrix

pytestmark = [pytest.mark.conformance]

FIXTURES = pathlib.Path(__file__).parent.parent / "fixtures"
GOLDEN_PATH = FIXTURES / "golden_matrix_tiny.json"

#: One-liner run in a fresh interpreter: build the tiny matrix with
#: the on-disk cache disabled and print its digest.
FRESH_BUILD = (
    "from repro.conformance.matrix import TINY_SIZING, build_matrix;"
    "print(build_matrix(TINY_SIZING, use_memo=False).digest())"
)


@pytest.fixture(scope="module")
def payload() -> dict:
    return build_matrix(TINY_SIZING).to_dict()


def test_golden_matrix(payload, update_goldens):
    if update_goldens:
        FIXTURES.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    assert GOLDEN_PATH.exists(), (
        "golden matrix fixture missing — generate it with "
        "`pytest tests/conformance/test_matrix_golden.py --update-goldens`"
    )
    golden = json.loads(GOLDEN_PATH.read_text())

    hint = "matrix output drifted; if intentional, rerun with --update-goldens"
    assert payload["schema_version"] == golden["schema_version"], hint
    assert payload["scenarios"] == golden["scenarios"], hint
    assert payload["detectors"] == golden["detectors"], hint
    assert payload["conformant"] == golden["conformant"], hint
    for ours, theirs in zip(payload["cells"], golden["cells"]):
        key = (theirs["scenario"], theirs["detector"])
        assert ours == theirs, f"cell {key}: {hint}"
    assert payload == golden, hint


def test_golden_matrix_is_conformant():
    """The committed fixture itself must record a fully conformant
    corpus — a divergence can't be frozen in by --update-goldens."""
    golden = json.loads(GOLDEN_PATH.read_text())
    assert golden["conformant"] is True
    assert all(cell["matched"] for cell in golden["cells"])


@pytest.mark.slow
def test_fresh_interpreters_agree(tmp_path):
    """Two cold processes build byte-identical matrices."""
    digests = []
    for _ in range(2):
        result = subprocess.run(
            [sys.executable, "-c", FRESH_BUILD],
            capture_output=True,
            text=True,
            check=True,
            timeout=600,
        )
        digests.append(result.stdout.strip())
    assert digests[0] == digests[1]
    assert len(digests[0]) == 64

"""The attack × detector conformance matrix as a tested contract.

The tiny-sizing matrix is built once per module and interrogated:
every registered scenario must land exactly the outcome row its class
declares, with the two headline adversarial cells pinned explicitly —
slow-drift trips the drift monitor *without* a GMM alarm, and the SMM
shadow is the documented all-miss row.
"""

from __future__ import annotations

import pytest

import repro.conformance.matrix as matrix_mod
from repro.conformance.matrix import (
    CI_SIZING,
    DETECTOR_COLUMNS,
    OUTCOME_VOCABULARY,
    SIZINGS,
    TINY_SIZING,
    ConformanceMatrix,
    MatrixSizing,
    build_matrix,
    validate_declarations,
)
from repro.pipeline.stages import SCENARIOS

pytestmark = [pytest.mark.conformance]


@pytest.fixture(scope="module")
def tiny_matrix() -> ConformanceMatrix:
    return build_matrix(TINY_SIZING)


class TestShape:
    def test_covers_the_full_registry(self, tiny_matrix):
        assert list(tiny_matrix.scenarios) == sorted(SCENARIOS)
        assert len(tiny_matrix.scenarios) >= 7
        assert list(tiny_matrix.detectors) == list(DETECTOR_COLUMNS)
        assert len(tiny_matrix.cells) == len(tiny_matrix.scenarios) * len(
            tiny_matrix.detectors
        )

    def test_every_observed_outcome_is_in_vocabulary(self, tiny_matrix):
        for cell in tiny_matrix.cells:
            assert cell.observed in OUTCOME_VOCABULARY[cell.detector]

    def test_cell_lookup(self, tiny_matrix):
        cell = tiny_matrix.cell("rootkit", "gmm-interval")
        assert cell.scenario == "rootkit"
        with pytest.raises(KeyError):
            tiny_matrix.cell("rootkit", "sixth-sense")


class TestConformance:
    def test_matrix_is_conformant(self, tiny_matrix):
        mismatched = [
            f"{c.scenario}×{c.detector}: expected {c.expected}, got {c.observed}"
            for c in tiny_matrix.mismatches()
        ]
        assert tiny_matrix.conformant, mismatched

    def test_slow_drift_flags_drift_without_gmm_alarm(self, tiny_matrix):
        """The tentpole cell: the alarm rule misses the ramp but the
        drift monitor catches the distribution shift."""
        assert tiny_matrix.cell("slow-drift", "gmm-alarm").observed == "miss"
        assert tiny_matrix.cell("slow-drift", "drift").observed == "drift-flag"
        metrics = tiny_matrix.cell("slow-drift", "drift").metrics
        assert metrics["observed_rate"] > metrics["expected_rate"]

    def test_smm_shadow_is_the_documented_known_miss(self, tiny_matrix):
        for column in DETECTOR_COLUMNS:
            cell = tiny_matrix.cell("smm-shadow", column)
            assert cell.matched, column
            assert cell.observed in ("miss", "no-drift", "within-budget")

    def test_mimicry_evades_every_gmm_column(self, tiny_matrix):
        assert tiny_matrix.cell("mimicry", "gmm-alarm").observed == "miss"
        assert tiny_matrix.cell("mimicry", "gmm-interval").observed == "miss"

    def test_loud_scenarios_detected_by_both_gmm_columns(self, tiny_matrix):
        for scenario in ("app-launch", "shellcode", "interrupt-storm"):
            assert tiny_matrix.cell(scenario, "gmm-alarm").observed == "detect"
            assert tiny_matrix.cell(scenario, "gmm-interval").observed == "detect"

    def test_every_boot_stays_inside_the_fpr_budget(self, tiny_matrix):
        for scenario in tiny_matrix.scenarios:
            assert tiny_matrix.cell(scenario, "fpr-budget").observed == (
                "within-budget"
            )


class TestDeterminism:
    def test_rebuild_is_bit_identical(self, tiny_matrix):
        again = build_matrix(TINY_SIZING)
        assert again.to_dict() == tiny_matrix.to_dict()
        assert again.digest() == tiny_matrix.digest()

    def test_json_roundtrip_is_canonical(self, tiny_matrix):
        import json

        payload = json.loads(tiny_matrix.to_json())
        assert payload == tiny_matrix.to_dict()

    def test_subset_rows_match_full_matrix(self, tiny_matrix):
        subset = build_matrix(TINY_SIZING, scenarios=["smm-shadow", "rootkit"])
        assert list(subset.scenarios) == ["rootkit", "smm-shadow"]
        for cell in subset.cells:
            full = tiny_matrix.cell(cell.scenario, cell.detector)
            assert cell.to_dict() == full.to_dict()


class TestValidation:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_matrix(TINY_SIZING, scenarios=["nuke"])

    def test_registry_declarations_are_complete(self):
        validate_declarations(sorted(SCENARIOS))

    def test_missing_column_is_a_hard_error(self, monkeypatch):
        class Partial:
            expected_outcomes = {"gmm-alarm": "detect"}

        monkeypatch.setitem(matrix_mod.SCENARIOS, "partial", Partial)
        with pytest.raises(ValueError, match="declares no expected outcome"):
            validate_declarations(["partial"])

    def test_out_of_vocabulary_outcome_is_a_hard_error(self, monkeypatch):
        class Wrong:
            expected_outcomes = {
                "gmm-alarm": "explodes",
                "gmm-interval": "detect",
                "drift": "no-drift",
                "fpr-budget": "within-budget",
            }

        monkeypatch.setitem(matrix_mod.SCENARIOS, "wrong", Wrong)
        with pytest.raises(ValueError, match="legal outcomes"):
            validate_declarations(["wrong"])

    def test_unknown_column_is_a_hard_error(self, monkeypatch):
        class Extra:
            expected_outcomes = {
                "gmm-alarm": "detect",
                "gmm-interval": "detect",
                "drift": "drift-flag",
                "fpr-budget": "within-budget",
                "sixth-sense": "detect",
            }

        monkeypatch.setitem(matrix_mod.SCENARIOS, "extra", Extra)
        with pytest.raises(ValueError, match="unknown detector column"):
            validate_declarations(["extra"])

    def test_all_problems_reported_at_once(self, monkeypatch):
        class Bad:
            expected_outcomes = {"sixth-sense": "detect"}

        monkeypatch.setitem(matrix_mod.SCENARIOS, "bad", Bad)
        with pytest.raises(ValueError) as excinfo:
            validate_declarations(["bad"])
        message = str(excinfo.value)
        assert message.count("declares no expected outcome") == len(
            matrix_mod.OUTCOME_VOCABULARY
        )
        assert "unknown detector column" in message


class TestSizings:
    def test_registry(self):
        assert SIZINGS == {"tiny": TINY_SIZING, "ci": CI_SIZING}

    def test_drift_column_needs_enough_samples(self):
        with pytest.raises(ValueError, match="drift verdict"):
            MatrixSizing(
                name="thin",
                scale=TINY_SIZING.scale,
                pre_intervals=10,
                attack_intervals=10,
            )

    def test_pre_window_must_exist(self):
        with pytest.raises(ValueError, match="pre_intervals"):
            MatrixSizing(
                name="thin",
                scale=TINY_SIZING.scale,
                pre_intervals=0,
                attack_intervals=48,
            )

"""Paper-conformance suite: the headline claims as executable checks.

Each test quotes a claim from *Memory Heat Map: Anomaly Detection in
Real-Time Embedded Systems Using Memory Behavior* (DAC 2015) and pins
it on the quick-scale reference pipeline.  These are the repo's
contract with the paper: if a refactor breaks one, the reproduction no
longer says what the paper says.

The suite is ``slow``-marked (it trains the reference detector and
replays all three attack scenarios) and runs in the CI full-tests job.
"""

import numpy as np
import pytest

from repro.learn.metrics import roc_auc_from_scores
from repro.pipeline.experiments import (
    run_app_launch_experiment,
    run_rootkit_experiment,
    run_shellcode_experiment,
)
from repro.pipeline.training import collect_training_data
from repro.sim.platform import PlatformConfig

pytestmark = [pytest.mark.slow, pytest.mark.conformance]


@pytest.fixture(scope="module")
def app_launch(quick_artifacts):
    return run_app_launch_experiment(quick_artifacts)


@pytest.fixture(scope="module")
def shellcode(quick_artifacts):
    return run_shellcode_experiment(quick_artifacts)


@pytest.fixture(scope="module")
def rootkit(quick_artifacts):
    return run_rootkit_experiment(quick_artifacts)


class TestEigenmemoryDimensionality:
    """Section 5.2: "L′ ranged from 9 to 16 eigen-memories" while
    retaining the targeted variance of the ~1,472-dimensional MHM."""

    def test_automatic_l_prime_in_paper_band(self, quick_detector):
        assert 9 <= quick_detector.num_eigenmemories_ <= 16

    def test_retained_variance_explains_at_least_90_percent(
        self, quick_detector
    ):
        assert quick_detector.eigenmemory.retained_variance_ >= 0.90
        # The implementation targets the paper's stricter 99.99 %.
        assert quick_detector.eigenmemory.retained_variance_ >= 0.9999

    def test_subspace_is_a_drastic_reduction(self, quick_detector):
        ambient = quick_detector.eigenmemory.mean_.shape[0]
        assert quick_detector.num_eigenmemories_ <= ambient // 20


class TestThresholdCalibration:
    """Section 5.2: θ_p is the p-percentile of validation densities, so
    the benign flag rate should track p.  We budget 2·p for sampling
    noise (the "FPR ≤ 2·(1−p)" conformance bound)."""

    @pytest.mark.parametrize("p_percent", [0.5, 1.0])
    def test_calibration_set_fpr_within_twice_budget(
        self, quick_detector, quick_artifacts, p_percent
    ):
        scores = quick_detector.score_series(quick_artifacts.data.validation)
        theta = quick_detector.threshold(p_percent)
        fpr = float(np.mean(scores < theta))
        assert fpr <= 2.0 * (p_percent / 100.0)

    def test_fresh_normal_run_fpr_stays_low(self, quick_detector):
        """An unseen benign boot: the flag rate must stay near the
        budget (loose bound — one fresh run is 120 Bernoulli draws)."""
        fresh = collect_training_data(
            PlatformConfig(),
            runs=1,
            intervals_per_run=120,
            validation_intervals=1,
            base_seed=4242,
        )
        scores = quick_detector.score_series(fresh.training)
        theta = quick_detector.threshold(1.0)
        assert float(np.mean(scores < theta)) <= 0.05

    def test_thresholds_monotone_in_p(self, quick_detector):
        assert quick_detector.threshold(0.5) <= quick_detector.threshold(1.0)


class TestAttackDetectionRates:
    """Sections 5.3–5.4: all three attacks perturb the MHM stream
    enough to detect, at scenario-dependent strength."""

    def test_app_launch_detected(self, app_launch):
        """Figure 7: the qsort launch is flagged promptly and the
        active window is detected at a solid rate."""
        assert app_launch.attack_detection_rate(1.0) >= 0.35
        assert 0 <= app_launch.detection_latency_intervals(1.0) <= 5
        assert app_launch.pre_attack_fpr(1.0) <= 0.05

    def test_shellcode_detected_immediately_and_persistently(self, shellcode):
        """Figure 8: the host task never comes back; detection is
        immediate and the majority of post-attack intervals stay
        flagged."""
        assert shellcode.attack_detection_rate(1.0) >= 0.5
        assert 0 <= shellcode.detection_latency_intervals(1.0) <= 2
        assert shellcode.pre_attack_fpr(1.0) <= 0.05

    def test_rootkit_load_event_detected(self, rootkit):
        """Figures 9–10: the LKM load is caught even though the
        steady-state hijack is only intermittently visible."""
        load = rootkit.scenario.attack_interval
        flags = rootkit.flags(1.0)
        assert flags[load] or flags[load + 1]
        assert rootkit.attack_detection_rate(1.0) >= 0.03

    def test_scores_rank_attack_intervals_below_normal(self, app_launch):
        """The density score is a usable ranking signal, not just a
        thresholded bit: AUC against ground truth stays high."""
        auc = roc_auc_from_scores(
            -app_launch.log10_densities, app_launch.ground_truth
        )
        assert auc >= 0.80
